//! Uniform round-executor engine for the paper's CIC protocols.
//!
//! Every RDT protocol of the paper follows one shape: update a
//! `(TDV, simple, causal)` triple on send, evaluate a forced-checkpoint
//! predicate on arrival (Figure 6 and its §5 weakenings). The legacy
//! modules ([`crate::Bhmr`], [`crate::BhmrNoSimple`],
//! [`crate::BhmrCausalOnly`], [`crate::Fdas`], [`crate::Fdi`]) hand-roll
//! that shape with per-message heap-allocated piggybacks — every
//! `before_send` clones a `DependencyVector` plus bit structures — and
//! scalar per-destination predicate loops.
//!
//! This module reimplements the five protocols as *pure round-state
//! machines* over one contiguous, bit-packed arena:
//!
//! * [`ExecutorState`] owns a single slab per control structure for **all**
//!   `n` processes of a run — TDV rows (`n × n` u32s), `sent_to` /
//!   `simple` bit rows (`⌈n/64⌉` words per process) and the `causal`
//!   row-slab (`n` rows of `⌈n/64⌉` words per process).
//! * Sends write the piggyback into a slot of a recycled scratch arena:
//!   zero per-message allocation. A [`PackedPiggyback`] is an arena
//!   *offset* (plus a reference count), not an owned triple.
//! * Arrivals evaluate the Figure 6 predicates word-parallel: the
//!   `∃j: sent_to[j] ∧ ¬m.causal[k][j]` inner loop of `C1` becomes one
//!   masked `AND`/`OR` over 64 destination processes per operation, and
//!   the per-entry `simple`/`causal` merge becomes a handful of word ops
//!   driven by *greater*/*equal* classification masks.
//!
//! The executor is behaviourally identical to the legacy protocols —
//! same forced-checkpoint decisions, same checkpoint records, same
//! reported piggyback bytes — which the differential suite
//! (`crates/core/tests/executor_differential.rs`) pins over random
//! schedules. The legacy modules stay exported as the oracles.
//!
//! # Sharing model
//!
//! One [`ExecutorState`] serves all processes of one run; each process
//! holds an [`ExecutorCell`] (a `Rc` handle plus its own
//! [`ProtocolStats`]) implementing [`CicProtocol`]. Use [`spawner`] to
//! get a factory closure compatible with the simulator's
//! `Fn(usize, ProcessId)` protocol constructors: consecutive cells of one
//! run share a state, and a new run (process 0 requested again) starts a
//! fresh arena.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use rdt_causality::{CheckpointId, ProcessId};

use crate::{
    ArrivalOutcome, CheckpointKind, CheckpointRecord, CicProtocol, PiggybackSize, ProtocolKind,
    ProtocolStats, SendOutcome,
};

/// Which of the paper's protocols an [`ExecutorState`] runs.
///
/// The spec fixes the piggyback layout (which control structures exist)
/// and the forced-checkpoint predicate; everything else — checkpoint
/// bookkeeping, the merge rules of statement S2 — is shared.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecutorSpec {
    /// Full BHMR (§4): piggybacks `(TDV, simple, causal)`, forces on
    /// `C1 ∨ C2`.
    Bhmr,
    /// The deliberately weakened control: full BHMR state but forcing on
    /// `C2` alone (matches [`crate::Bhmr::weakened_c2_only`]).
    BhmrC2Only,
    /// §5.1 first variant: piggybacks `(TDV, causal)`, forces on
    /// `C1 ∨ C2'`.
    BhmrNoSimple,
    /// §5.1 second variant: piggybacks `(TDV, causal)` with a permanently
    /// false diagonal, forces on `C1` alone.
    BhmrCausalOnly,
    /// Wang's FDAS (§5.2): piggybacks `TDV`, forces on
    /// `after_first_send ∧ ∃k fresh`.
    Fdas,
    /// Wang's FDI (§5.2): piggybacks `TDV`, forces on `∃k fresh`.
    Fdi,
}

impl ExecutorSpec {
    /// All six specs, lattice order (fewest forced checkpoints first).
    pub fn all() -> &'static [ExecutorSpec] {
        &[
            ExecutorSpec::Bhmr,
            ExecutorSpec::BhmrC2Only,
            ExecutorSpec::BhmrNoSimple,
            ExecutorSpec::BhmrCausalOnly,
            ExecutorSpec::Fdas,
            ExecutorSpec::Fdi,
        ]
    }

    /// The spec for a dependency-tracking [`ProtocolKind`], or `None` for
    /// kinds the executor does not cover (index-based and pattern-based
    /// protocols carry no `(TDV, simple, causal)` state).
    pub fn from_kind(kind: ProtocolKind) -> Option<ExecutorSpec> {
        match kind {
            ProtocolKind::Bhmr => Some(ExecutorSpec::Bhmr),
            ProtocolKind::BhmrNoSimple => Some(ExecutorSpec::BhmrNoSimple),
            ProtocolKind::BhmrCausalOnly => Some(ExecutorSpec::BhmrCausalOnly),
            ProtocolKind::Fdas => Some(ExecutorSpec::Fdas),
            ProtocolKind::Fdi => Some(ExecutorSpec::Fdi),
            _ => None,
        }
    }

    /// The protocol name, identical to the legacy implementation's
    /// [`CicProtocol::name`].
    pub fn name(self) -> &'static str {
        match self {
            ExecutorSpec::Bhmr => "bhmr",
            ExecutorSpec::BhmrC2Only => "bhmr-c2only",
            ExecutorSpec::BhmrNoSimple => "bhmr-nosimple",
            ExecutorSpec::BhmrCausalOnly => "bhmr-causalonly",
            ExecutorSpec::Fdas => "fdas",
            ExecutorSpec::Fdi => "fdi",
        }
    }

    /// Whether the piggyback (and local state) carries the `simple`
    /// vector.
    pub fn has_simple(self) -> bool {
        matches!(self, ExecutorSpec::Bhmr | ExecutorSpec::BhmrC2Only)
    }

    /// Whether the piggyback (and local state) carries the `causal`
    /// matrix.
    pub fn has_causal(self) -> bool {
        !matches!(self, ExecutorSpec::Fdas | ExecutorSpec::Fdi)
    }

    /// Whether the `causal` matrix starts as the identity and keeps its
    /// diagonal across checkpoints (`false` only for the §5.1 second
    /// variant, which maintains a permanently false diagonal).
    pub fn identity_diagonal(self) -> bool {
        !matches!(self, ExecutorSpec::BhmrCausalOnly)
    }

    /// Whether predicate `C1` participates in the forcing decision.
    pub fn uses_c1(self) -> bool {
        matches!(
            self,
            ExecutorSpec::Bhmr | ExecutorSpec::BhmrNoSimple | ExecutorSpec::BhmrCausalOnly
        )
    }

    /// The *logical* piggyback size in bytes for an `n`-process run —
    /// identical to what the legacy unpacked representations report
    /// (`4n` for the TDV, `⌈n/8⌉` for a boolean vector, `⌈n²/8⌉` for the
    /// matrix), so Table 1 overhead accounting does not shift with the
    /// packed arena.
    pub fn piggyback_bytes(self, n: usize) -> usize {
        let tdv = 4 * n;
        let boolvec = n.div_ceil(8);
        let matrix = (n * n).div_ceil(8);
        match self {
            ExecutorSpec::Bhmr | ExecutorSpec::BhmrC2Only => tdv + boolvec + matrix,
            ExecutorSpec::BhmrNoSimple | ExecutorSpec::BhmrCausalOnly => tdv + matrix,
            ExecutorSpec::Fdas | ExecutorSpec::Fdi => tdv,
        }
    }
}

/// Bit-packed protocol state and piggyback arena shared by every process
/// of one run.
struct Inner {
    spec: ExecutorSpec,
    n: usize,
    /// Words per bit row: `⌈n/64⌉`.
    wpr: usize,
    /// Words of `simple` per process (0 when the spec has no `simple`).
    simple_words: usize,
    /// Words of `causal` per process (`n · wpr`, or 0 without `causal`).
    causal_words: usize,
    /// Bit words per piggyback slot: `simple_words + causal_words`.
    slot_bits: usize,
    /// `n` TDV rows of `n` entries each; row `p` starts at `p·n`.
    tdv: Vec<u32>,
    /// `n` `sent_to` bit rows of `wpr` words each.
    sent_to: Vec<u64>,
    /// `n` `simple` bit rows of `simple_words` words each.
    simple: Vec<u64>,
    /// `n` `causal` matrices of `causal_words` words each; row `k` of
    /// process `p` starts at `p·causal_words + k·wpr`.
    causal: Vec<u64>,
    /// Per-process FDAS flag (maintained for every spec; only FDAS reads
    /// it).
    after_first_send: Vec<bool>,
    /// Piggyback arena, TDV part: slot `s` occupies `[s·n, (s+1)·n)`.
    pb_tdv: Vec<u32>,
    /// Piggyback arena, bit part: slot `s` occupies
    /// `[s·slot_bits, (s+1)·slot_bits)` — `simple` row first, then the
    /// `causal` row-slab.
    pb_bits: Vec<u64>,
    /// Scratch: *greater* classification mask of the arrival in progress.
    g_mask: Vec<u64>,
    /// Scratch: *equal* classification mask of the arrival in progress.
    e_mask: Vec<u64>,
}

impl Inner {
    fn new(spec: ExecutorSpec, n: usize) -> Inner {
        let wpr = n.div_ceil(64);
        let simple_words = if spec.has_simple() { wpr } else { 0 };
        let causal_words = if spec.has_causal() { n * wpr } else { 0 };
        let mut inner = Inner {
            spec,
            n,
            wpr,
            simple_words,
            causal_words,
            slot_bits: simple_words + causal_words,
            tdv: vec![0; n * n],
            sent_to: vec![0; n * wpr],
            simple: vec![0; n * simple_words],
            causal: vec![0; n * causal_words],
            after_first_send: vec![false; n],
            pb_tdv: Vec::with_capacity(n * n),
            pb_bits: Vec::with_capacity(n * (simple_words + causal_words)),
            g_mask: vec![0; wpr],
            e_mask: vec![0; wpr],
        };
        for p in 0..n {
            // Statement S0: TDV_p = [0,…,0] then the initial checkpoint
            // increments the owner entry; simple_p[p] is permanently true;
            // causal_p starts as the identity (or all-false for the
            // false-diagonal variant).
            inner.tdv[p * n + p] = 1;
            if spec.has_simple() {
                inner.simple[p * simple_words + p / 64] |= 1u64 << (p % 64);
            }
            if spec.has_causal() && spec.identity_diagonal() {
                for k in 0..n {
                    inner.causal[p * causal_words + k * wpr + k / 64] |= 1u64 << (k % 64);
                }
            }
        }
        inner
    }

    /// Procedure `take_checkpoint` of Figure 6 for process `me`.
    fn take_checkpoint(&mut self, me: usize, kind: CheckpointKind) -> CheckpointRecord {
        let n = self.n;
        let row = &self.tdv[me * n..(me + 1) * n];
        let record = CheckpointRecord {
            id: CheckpointId::new(ProcessId::new(me), row[me]),
            kind,
            min_consistent_gc: Some(row.to_vec()),
        };
        self.sent_to[me * self.wpr..(me + 1) * self.wpr].fill(0);
        if self.simple_words > 0 {
            // Keep only the own bit (its value), clear every other entry.
            let base = me * self.simple_words;
            let keep = self.simple[base + me / 64] & (1u64 << (me % 64));
            self.simple[base..base + self.simple_words].fill(0);
            self.simple[base + me / 64] = keep;
        }
        if self.causal_words > 0 {
            let base = me * self.causal_words + me * self.wpr;
            if self.spec.identity_diagonal() {
                // causal[me][j] := false for j ≠ me; the diagonal entry
                // keeps its value.
                let keep = self.causal[base + me / 64] & (1u64 << (me % 64));
                self.causal[base..base + self.wpr].fill(0);
                self.causal[base + me / 64] = keep;
            } else {
                self.causal[base..base + self.wpr].fill(0);
            }
        }
        self.after_first_send[me] = false;
        self.tdv[me * n + me] += 1;
        record
    }

    /// Statement S1: record the destination and snapshot the sender's
    /// control structures into arena slot `slot` (a straight `memcpy`, no
    /// allocation).
    fn write_send(&mut self, me: usize, dest: usize, slot: usize) {
        let n = self.n;
        self.pb_tdv[slot * n..(slot + 1) * n].copy_from_slice(&self.tdv[me * n..(me + 1) * n]);
        let base = slot * self.slot_bits;
        if self.simple_words > 0 {
            self.pb_bits[base..base + self.simple_words].copy_from_slice(
                &self.simple[me * self.simple_words..(me + 1) * self.simple_words],
            );
        }
        if self.causal_words > 0 {
            self.pb_bits[base + self.simple_words..base + self.slot_bits].copy_from_slice(
                &self.causal[me * self.causal_words..(me + 1) * self.causal_words],
            );
        }
        self.sent_to[me * self.wpr + dest / 64] |= 1u64 << (dest % 64);
        self.after_first_send[me] = true;
    }

    /// `∃k: m.TDV[k] > TDV_me[k]` — a fresh dependency in the arriving
    /// piggyback.
    fn any_fresh(&self, me: usize, slot: usize) -> bool {
        let n = self.n;
        let mine = &self.tdv[me * n..(me + 1) * n];
        let theirs = &self.pb_tdv[slot * n..(slot + 1) * n];
        theirs.iter().zip(mine).any(|(&m, &t)| m > t)
    }

    /// Predicate `C1`, word-parallel over destinations: for each fresh
    /// `k`, `∃j: sent_to[j] ∧ ¬m.causal[k][j]` is one masked AND over 64
    /// processes per word.
    fn c1(&self, me: usize, slot: usize) -> bool {
        let sent = &self.sent_to[me * self.wpr..(me + 1) * self.wpr];
        if sent.iter().all(|&w| w == 0) {
            return false;
        }
        let n = self.n;
        let mine = &self.tdv[me * n..(me + 1) * n];
        let theirs = &self.pb_tdv[slot * n..(slot + 1) * n];
        let causal =
            &self.pb_bits[slot * self.slot_bits + self.simple_words..][..self.causal_words];
        if self.wpr == 1 {
            // n ≤ 64: each causal row is one word.
            let s = sent[0];
            return theirs
                .iter()
                .zip(mine)
                .zip(causal)
                .any(|((&m, &t), &row)| m > t && s & !row != 0);
        }
        for k in 0..n {
            if theirs[k] > mine[k] {
                let row = &causal[k * self.wpr..][..self.wpr];
                if sent.iter().zip(row).any(|(&s, &c)| s & !c != 0) {
                    return true;
                }
            }
        }
        false
    }

    /// Predicate `C2`: `m.TDV[me] = TDV_me[me] ∧ ¬m.simple[me]`.
    fn c2(&self, me: usize, slot: usize) -> bool {
        let n = self.n;
        if self.pb_tdv[slot * n + me] != self.tdv[me * n + me] {
            return false;
        }
        let word = self.pb_bits[slot * self.slot_bits + me / 64];
        word & (1u64 << (me % 64)) == 0
    }

    /// Predicate `C2'`: `m.TDV[me] = TDV_me[me] ∧ ∃k fresh`.
    fn c2_prime(&self, me: usize, slot: usize) -> bool {
        let n = self.n;
        self.pb_tdv[slot * n + me] == self.tdv[me * n + me] && self.any_fresh(me, slot)
    }

    /// The spec's forced-checkpoint predicate, evaluated on the
    /// *pre-checkpoint* state (statement S2 of Figure 6).
    fn force_predicate(&self, me: usize, slot: usize) -> bool {
        match self.spec {
            ExecutorSpec::Bhmr => self.c1(me, slot) || self.c2(me, slot),
            ExecutorSpec::BhmrC2Only => self.c2(me, slot),
            ExecutorSpec::BhmrNoSimple => self.c1(me, slot) || self.c2_prime(me, slot),
            ExecutorSpec::BhmrCausalOnly => self.c1(me, slot),
            ExecutorSpec::Fdas => self.after_first_send[me] && self.any_fresh(me, slot),
            ExecutorSpec::Fdi => self.any_fresh(me, slot),
        }
    }

    /// Statement S2's control-variable update, run *after* any forced
    /// checkpoint (so the classification sees the post-checkpoint TDV,
    /// exactly like the legacy per-entry loop).
    fn apply_update(&mut self, me: usize, sender: usize, slot: usize) {
        let n = self.n;
        let wpr = self.wpr;
        let simple_words = self.simple_words;
        let causal_words = self.causal_words;
        let slot_bits = self.slot_bits;
        let identity_diagonal = self.spec.identity_diagonal();
        let Inner {
            tdv,
            simple,
            causal,
            pb_tdv,
            pb_bits,
            g_mask,
            e_mask,
            ..
        } = self;
        let mine = &mut tdv[me * n..(me + 1) * n];
        let theirs = &pb_tdv[slot * n..(slot + 1) * n];

        if slot_bits == 0 {
            // No bit-packed structures to classify for (FDAS/FDI): the
            // update is a plain pointwise max.
            for (t, &m) in mine.iter_mut().zip(theirs) {
                if m > *t {
                    *t = m;
                }
            }
            return;
        }

        // Classify every entry against the piggyback and merge the TDV in
        // the same pass: G (greater) rows are overwritten, E (equal) rows
        // are merged, the rest untouched. Chunked by 64 so each mask word
        // builds in a register.
        for (w, (my_chunk, their_chunk)) in mine.chunks_mut(64).zip(theirs.chunks(64)).enumerate() {
            let mut g = 0u64;
            let mut e = 0u64;
            for (b, (t, &m)) in my_chunk.iter_mut().zip(their_chunk).enumerate() {
                if m > *t {
                    *t = m;
                    g |= 1u64 << b;
                } else if m == *t {
                    e |= 1u64 << b;
                }
            }
            g_mask[w] = g;
            e_mask[w] = e;
        }
        if simple_words > 0 {
            // Word-parallel merge of all n `simple` entries:
            //   greater: take the piggyback's bit;
            //   equal:   AND with the piggyback's bit;
            //   less:    keep ours.
            // s' = ((s & ¬G) | (ms & G)) & (¬E | ms)
            let my = &mut simple[me * simple_words..(me + 1) * simple_words];
            let pb = &pb_bits[slot * slot_bits..][..simple_words];
            for (((s, &ms), &g), &e) in my.iter_mut().zip(pb).zip(&*g_mask).zip(&*e_mask) {
                *s = ((*s & !g) | (ms & g)) & (!e | ms);
            }
        }
        if causal_words > 0 {
            let my = &mut causal[me * causal_words..(me + 1) * causal_words];
            let pb = &pb_bits[slot * slot_bits + simple_words..][..causal_words];
            if wpr == 1 {
                // n ≤ 64: one word per causal row, so the per-row
                // copy/OR selects branchlessly from the G/E bits.
                let g0 = g_mask[0];
                let e0 = e_mask[0];
                for (k, (row, &prow)) in my.iter_mut().zip(pb).enumerate() {
                    let gm = ((g0 >> k) & 1).wrapping_neg();
                    let em = ((e0 >> k) & 1).wrapping_neg();
                    *row = (gm & prow) | (!gm & (*row | (em & prow)));
                }
                // The delivered message is an on-line trackable R-path
                // from the sender's interval, and everything reaching the
                // sender now reaches us: causal[sender][me] := true, then
                // column-OR sender into me.
                my[sender] |= 1u64 << me;
                for row in my.iter_mut() {
                    *row |= ((*row >> sender) & 1) << me;
                }
                if !identity_diagonal {
                    for (k, row) in my.iter_mut().enumerate() {
                        *row &= !(1u64 << k);
                    }
                }
            } else {
                for k in 0..n {
                    let g = g_mask[k / 64] & (1u64 << (k % 64)) != 0;
                    let e = e_mask[k / 64] & (1u64 << (k % 64)) != 0;
                    let row = &mut my[k * wpr..(k + 1) * wpr];
                    let prow = &pb[k * wpr..(k + 1) * wpr];
                    if g {
                        row.copy_from_slice(prow);
                    } else if e {
                        for (w, &p) in row.iter_mut().zip(prow) {
                            *w |= p;
                        }
                    }
                }
                // causal[sender][me] := true, then column-OR sender into
                // me (see the one-word path above).
                my[sender * wpr + me / 64] |= 1u64 << (me % 64);
                for l in 0..n {
                    if my[l * wpr + sender / 64] & (1u64 << (sender % 64)) != 0 {
                        my[l * wpr + me / 64] |= 1u64 << (me % 64);
                    }
                }
                if !identity_diagonal {
                    for k in 0..n {
                        my[k * wpr + k / 64] &= !(1u64 << (k % 64));
                    }
                }
            }
        }
    }

    fn tdv_entry(&self, p: usize, k: usize) -> u32 {
        self.tdv[p * self.n + k]
    }

    fn sent_to_entry(&self, p: usize, j: usize) -> bool {
        self.sent_to[p * self.wpr + j / 64] & (1u64 << (j % 64)) != 0
    }

    fn simple_entry(&self, p: usize, k: usize) -> bool {
        self.simple_words > 0
            && self.simple[p * self.simple_words + k / 64] & (1u64 << (k % 64)) != 0
    }

    fn causal_entry(&self, p: usize, k: usize, l: usize) -> bool {
        self.causal_words > 0
            && self.causal[p * self.causal_words + k * self.wpr + l / 64] & (1u64 << (l % 64)) != 0
    }

    fn pb_tdv_entry(&self, slot: usize, k: usize) -> u32 {
        self.pb_tdv[slot * self.n + k]
    }

    fn pb_simple_entry(&self, slot: usize, k: usize) -> bool {
        self.simple_words > 0
            && self.pb_bits[slot * self.slot_bits + k / 64] & (1u64 << (k % 64)) != 0
    }

    fn pb_causal_entry(&self, slot: usize, k: usize, l: usize) -> bool {
        self.causal_words > 0
            && self.pb_bits[slot * self.slot_bits + self.simple_words + k * self.wpr + l / 64]
                & (1u64 << (l % 64))
                != 0
    }
}

/// Reference counts for the piggyback arena slots.
///
/// Kept in a `RefCell` separate from [`Inner`] so that
/// [`PackedPiggyback`]'s `Clone`/`Drop` never contend with a protocol
/// step borrowing the state slabs.
#[derive(Default)]
struct SlotTable {
    refcounts: Vec<u32>,
    free: Vec<u32>,
}

/// The shared bit-packed arena behind one run's [`ExecutorCell`]s.
///
/// Owns the per-process protocol state (TDV rows, `sent_to`/`simple`
/// words, `causal` row-slab) and the recycled piggyback scratch arena.
/// Create one per run with [`ExecutorState::new_shared`] and hand each
/// process an [`ExecutorCell::attach`] handle — or let [`spawner`] do
/// both.
pub struct ExecutorState {
    spec: ExecutorSpec,
    n: usize,
    /// Logical piggyback bytes per message (legacy-equivalent accounting).
    bytes: u32,
    inner: RefCell<Inner>,
    slots: RefCell<SlotTable>,
}

impl ExecutorState {
    /// Creates the shared state for an `n`-process run of `spec`, with
    /// every process at its initial checkpoint (statement S0).
    pub fn new_shared(spec: ExecutorSpec, n: usize) -> Rc<ExecutorState> {
        Rc::new(ExecutorState {
            spec,
            n,
            bytes: spec.piggyback_bytes(n) as u32,
            inner: RefCell::new(Inner::new(spec, n)),
            slots: RefCell::new(SlotTable::default()),
        })
    }

    /// The spec this state runs.
    pub fn spec(&self) -> ExecutorSpec {
        self.spec
    }

    /// Number of processes in the run.
    pub fn num_processes(&self) -> usize {
        self.n
    }

    /// Total piggyback arena slots ever allocated (high-water mark of
    /// simultaneously in-flight messages).
    pub fn arena_slots(&self) -> usize {
        self.slots.borrow().refcounts.len()
    }

    /// Arena slots currently on the free list (allocated but not holding
    /// a live piggyback).
    pub fn arena_free_slots(&self) -> usize {
        self.slots.borrow().free.len()
    }

    /// Capacities of every growable buffer, for no-alloc-growth
    /// assertions: once the arena has warmed up to the peak number of
    /// in-flight messages, further protocol steps must not allocate.
    pub fn buffer_capacities(&self) -> Vec<usize> {
        let inner = self.inner.borrow();
        let slots = self.slots.borrow();
        vec![
            inner.tdv.capacity(),
            inner.sent_to.capacity(),
            inner.simple.capacity(),
            inner.causal.capacity(),
            inner.after_first_send.capacity(),
            inner.pb_tdv.capacity(),
            inner.pb_bits.capacity(),
            inner.g_mask.capacity(),
            inner.e_mask.capacity(),
            slots.refcounts.capacity(),
            slots.free.capacity(),
        ]
    }

    /// Pops a recycled slot or grows the arena by one slot.
    #[inline]
    fn alloc_slot(&self) -> u32 {
        let mut slots = self.slots.borrow_mut();
        if let Some(slot) = slots.free.pop() {
            slots.refcounts[slot as usize] = 1;
            slot
        } else {
            let slot = slots.refcounts.len() as u32;
            slots.refcounts.push(1);
            let mut inner = self.inner.borrow_mut();
            let n = inner.n;
            let slot_bits = inner.slot_bits;
            inner.pb_tdv.resize((slot as usize + 1) * n, 0);
            inner.pb_bits.resize((slot as usize + 1) * slot_bits, 0);
            slot
        }
    }

    #[inline]
    fn retain_slot(&self, slot: u32) {
        self.slots.borrow_mut().refcounts[slot as usize] += 1;
    }
}

impl fmt::Debug for ExecutorState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ExecutorState")
            .field("spec", &self.spec)
            .field("n", &self.n)
            .field("arena_slots", &self.arena_slots())
            .finish()
    }
}

/// A zero-copy piggyback: an arena slot reference into the run's shared
/// [`ExecutorState`].
///
/// Cloning bumps a reference count; dropping the last clone returns the
/// slot to the free list for the next send. [`PiggybackSize`] reports the
/// *logical* (legacy-equivalent) byte size, so Table 1 overhead numbers
/// are independent of the packed representation.
pub struct PackedPiggyback {
    shared: Rc<ExecutorState>,
    slot: u32,
    bytes: u32,
}

impl PackedPiggyback {
    /// The piggybacked `m.TDV[k]`.
    pub fn tdv_entry(&self, k: ProcessId) -> u32 {
        self.shared
            .inner
            .borrow()
            .pb_tdv_entry(self.slot as usize, k.index())
    }

    /// The piggybacked `m.simple[k]` (always `false` for specs without a
    /// `simple` vector).
    pub fn simple_entry(&self, k: ProcessId) -> bool {
        self.shared
            .inner
            .borrow()
            .pb_simple_entry(self.slot as usize, k.index())
    }

    /// The piggybacked `m.causal[k][l]` (always `false` for specs without
    /// a `causal` matrix).
    pub fn causal_entry(&self, k: ProcessId, l: ProcessId) -> bool {
        self.shared
            .inner
            .borrow()
            .pb_causal_entry(self.slot as usize, k.index(), l.index())
    }
}

impl Clone for PackedPiggyback {
    #[inline]
    fn clone(&self) -> PackedPiggyback {
        self.shared.retain_slot(self.slot);
        PackedPiggyback {
            shared: Rc::clone(&self.shared),
            slot: self.slot,
            bytes: self.bytes,
        }
    }
}

impl Drop for PackedPiggyback {
    #[inline]
    fn drop(&mut self) {
        // Never panic in Drop: if the slot table is unavailable (it never
        // is on the protocol paths; belt-and-braces for unwinds), leak the
        // slot instead.
        if let Ok(mut slots) = self.shared.slots.try_borrow_mut() {
            let slot = self.slot as usize;
            if slots.refcounts[slot] > 0 {
                slots.refcounts[slot] -= 1;
                if slots.refcounts[slot] == 0 {
                    slots.free.push(self.slot);
                }
            }
        }
    }
}

impl fmt::Debug for PackedPiggyback {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PackedPiggyback")
            .field("spec", &self.shared.spec)
            .field("slot", &self.slot)
            .field("bytes", &self.bytes)
            .finish()
    }
}

impl PiggybackSize for PackedPiggyback {
    #[inline]
    fn piggyback_bytes(&self) -> usize {
        self.bytes as usize
    }
}

/// One process's handle on the shared executor: implements
/// [`CicProtocol`] over the packed arena.
///
/// The cell owns only its process identity and its [`ProtocolStats`]; all
/// protocol state lives in the shared [`ExecutorState`].
#[derive(Debug)]
pub struct ExecutorCell {
    shared: Rc<ExecutorState>,
    me: ProcessId,
    stats: ProtocolStats,
}

impl ExecutorCell {
    /// Attaches process `me` to a shared state.
    ///
    /// # Panics
    ///
    /// Panics if `me` is out of range for the state's process count.
    pub fn attach(shared: Rc<ExecutorState>, me: ProcessId) -> ExecutorCell {
        assert!(
            me.index() < shared.n,
            "process {me} out of range for {} processes",
            shared.n
        );
        ExecutorCell {
            shared,
            me,
            stats: ProtocolStats::default(),
        }
    }

    /// The shared state this cell runs on.
    pub fn state(&self) -> &Rc<ExecutorState> {
        &self.shared
    }

    /// Whether predicate `C1` participates in the forcing decision.
    pub fn uses_c1(&self) -> bool {
        self.shared.spec.uses_c1()
    }

    /// The current `TDV_me[k]`.
    pub fn tdv_entry(&self, k: ProcessId) -> u32 {
        self.shared
            .inner
            .borrow()
            .tdv_entry(self.me.index(), k.index())
    }

    /// The current checkpoint interval (`TDV_me[me]`).
    pub fn current_interval(&self) -> u32 {
        self.tdv_entry(self.me)
    }

    /// The current `sent_to[j]`.
    pub fn sent_to(&self, j: ProcessId) -> bool {
        self.shared
            .inner
            .borrow()
            .sent_to_entry(self.me.index(), j.index())
    }

    /// Whether a send has occurred in the current checkpoint interval.
    pub fn after_first_send(&self) -> bool {
        self.shared.inner.borrow().after_first_send[self.me.index()]
    }

    /// The current `simple[k]` (always `false` for specs without a
    /// `simple` vector).
    pub fn simple_entry(&self, k: ProcessId) -> bool {
        self.shared
            .inner
            .borrow()
            .simple_entry(self.me.index(), k.index())
    }

    /// The current `causal[k][l]` (always `false` for specs without a
    /// `causal` matrix).
    pub fn causal_entry(&self, k: ProcessId, l: ProcessId) -> bool {
        self.shared
            .inner
            .borrow()
            .causal_entry(self.me.index(), k.index(), l.index())
    }
}

impl CicProtocol for ExecutorCell {
    type Piggyback = PackedPiggyback;

    fn name(&self) -> &'static str {
        self.shared.spec.name()
    }

    fn process(&self) -> ProcessId {
        self.me
    }

    fn num_processes(&self) -> usize {
        self.shared.n
    }

    fn next_checkpoint_index(&self) -> u32 {
        self.current_interval()
    }

    fn take_basic_checkpoint(&mut self) -> CheckpointRecord {
        self.stats.basic_checkpoints += 1;
        self.shared
            .inner
            .borrow_mut()
            .take_checkpoint(self.me.index(), CheckpointKind::Basic)
    }

    #[inline]
    fn before_send(&mut self, dest: ProcessId) -> SendOutcome<PackedPiggyback> {
        // Statement S1, zero-allocation: reserve an arena slot and memcpy
        // the control structures into it.
        let slot = self.shared.alloc_slot();
        self.shared
            .inner
            .borrow_mut()
            .write_send(self.me.index(), dest.index(), slot as usize);
        let bytes = self.shared.bytes;
        self.stats.messages_sent += 1;
        self.stats.piggyback_bytes_sent += bytes as u64;
        SendOutcome {
            piggyback: PackedPiggyback {
                shared: Rc::clone(&self.shared),
                slot,
                bytes,
            },
            forced_after: None,
        }
    }

    #[inline]
    fn on_message_arrival(
        &mut self,
        sender: ProcessId,
        piggyback: &PackedPiggyback,
    ) -> ArrivalOutcome {
        // Statement S2: evaluate the predicate on the pre-checkpoint
        // state, then update the control variables against the
        // post-checkpoint TDV — the same order as the legacy protocols.
        let me = self.me.index();
        let slot = piggyback.slot as usize;
        let mut inner = self.shared.inner.borrow_mut();
        let forced = if inner.force_predicate(me, slot) {
            self.stats.forced_checkpoints += 1;
            Some(inner.take_checkpoint(me, CheckpointKind::Forced))
        } else {
            None
        };
        inner.apply_update(me, sender.index(), slot);
        self.stats.messages_delivered += 1;
        ArrivalOutcome { forced }
    }

    fn stats(&self) -> &ProtocolStats {
        &self.stats
    }
}

/// A protocol factory for the simulator and replay harnesses: returns a
/// closure with the `Fn(usize, ProcessId) -> ExecutorCell` shape expected
/// by `Runner::new`-style constructors.
///
/// Cells requested for processes `1..n` of the same process count share
/// the state created for process 0; requesting process 0 (or a different
/// process count) starts a fresh run with a fresh arena. This matches the
/// in-order `0, 1, …, n-1` construction used by the simulator and the
/// certifier's replayer.
pub fn spawner(spec: ExecutorSpec) -> impl Fn(usize, ProcessId) -> ExecutorCell {
    let current: RefCell<Option<Rc<ExecutorState>>> = RefCell::new(None);
    move |n, me| {
        let mut cur = current.borrow_mut();
        let state = match cur.take() {
            Some(state) if me.index() != 0 && state.num_processes() == n => state,
            _ => ExecutorState::new_shared(spec, n),
        };
        let cell = ExecutorCell::attach(Rc::clone(&state), me);
        *cur = Some(state);
        cell
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Bhmr, CheckpointKind};
    use rdt_causality::CheckpointId;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn cells(spec: ExecutorSpec, n: usize) -> Vec<ExecutorCell> {
        let make = spawner(spec);
        (0..n).map(|i| make(n, p(i))).collect()
    }

    #[test]
    fn initial_state_matches_s0() {
        let c = cells(ExecutorSpec::Bhmr, 3);
        assert_eq!(c[1].tdv_entry(p(0)), 0);
        assert_eq!(c[1].tdv_entry(p(1)), 1);
        assert_eq!(c[1].tdv_entry(p(2)), 0);
        assert_eq!(c[1].next_checkpoint_index(), 1);
        assert!(c[1].simple_entry(p(1)));
        assert!(!c[1].simple_entry(p(0)));
        assert!(c[1].causal_entry(p(0), p(0)));
        assert!(c[1].causal_entry(p(1), p(1)));
        assert!(!c[1].causal_entry(p(0), p(1)));
        assert!(!c[1].sent_to(p(0)));
        assert!(!c[1].sent_to(p(2)));
    }

    #[test]
    fn basic_checkpoint_advances_interval_and_resets_knowledge() {
        let mut c = cells(ExecutorSpec::Bhmr, 2);
        c[0].before_send(p(1));
        assert!(c[0].sent_to(p(1)));
        let record = c[0].take_basic_checkpoint();
        assert_eq!(record.id, CheckpointId::new(p(0), 1));
        assert_eq!(record.kind, CheckpointKind::Basic);
        assert_eq!(record.min_consistent_gc, Some(vec![1, 0]));
        assert_eq!(c[0].next_checkpoint_index(), 2);
        assert!(!c[0].sent_to(p(1)));
        assert!(!c[0].causal_entry(p(0), p(1)));
        assert!(c[0].simple_entry(p(0)), "own entry stays true");
    }

    #[test]
    fn first_arrival_never_forces() {
        let mut c = cells(ExecutorSpec::Bhmr, 2);
        let send = c[1].before_send(p(0));
        let outcome = c[0].on_message_arrival(p(1), &send.piggyback);
        assert!(!outcome.was_forced());
        assert_eq!(c[0].tdv_entry(p(0)), 1);
        assert_eq!(c[0].tdv_entry(p(1)), 1);
        assert!(c[0].causal_entry(p(1), p(0)));
    }

    #[test]
    fn c1_forces_on_breakable_chain_without_sibling() {
        let mut c = cells(ExecutorSpec::Bhmr, 3);
        let to_p1 = c[0].before_send(p(1));
        c[1].on_message_arrival(p(0), &to_p1.piggyback);
        c[2].take_basic_checkpoint();
        let m = c[2].before_send(p(0));
        let outcome = c[0].on_message_arrival(p(2), &m.piggyback);
        assert!(outcome.was_forced());
        let record = outcome.forced.unwrap();
        assert_eq!(record.kind, CheckpointKind::Forced);
        assert_eq!(record.id, CheckpointId::new(p(0), 1));
        // Forced checkpoint is taken BEFORE the delivery merges the new
        // dependency, so it lands in the next interval.
        assert_eq!(c[0].tdv_entry(p(0)), 2);
        assert_eq!(c[0].tdv_entry(p(1)), 0);
        assert_eq!(c[0].tdv_entry(p(2)), 2);
    }

    #[test]
    fn no_send_in_interval_means_no_c1() {
        let mut c = cells(ExecutorSpec::Bhmr, 3);
        c[2].take_basic_checkpoint();
        let m = c[2].before_send(p(0));
        assert!(!c[0].on_message_arrival(p(2), &m.piggyback).was_forced());
    }

    #[test]
    fn c2_forces_on_non_simple_chain_back_to_self() {
        let mut c = cells(ExecutorSpec::Bhmr, 2);
        let m1 = c[0].before_send(p(1));
        c[1].on_message_arrival(p(0), &m1.piggyback);
        c[1].take_basic_checkpoint();
        let m2 = c[1].before_send(p(0));
        assert_eq!(m2.piggyback.tdv_entry(p(0)), 1);
        assert!(!m2.piggyback.simple_entry(p(0)));
        let outcome = c[0].on_message_arrival(p(1), &m2.piggyback);
        assert!(outcome.was_forced());
        assert_eq!(c[0].stats().forced_checkpoints, 1);
    }

    #[test]
    fn simple_chain_back_to_self_does_not_force() {
        let mut c = cells(ExecutorSpec::Bhmr, 2);
        let m1 = c[0].before_send(p(1));
        c[1].on_message_arrival(p(0), &m1.piggyback);
        let m2 = c[1].before_send(p(0));
        assert!(m2.piggyback.simple_entry(p(0)));
        assert!(!c[0].on_message_arrival(p(1), &m2.piggyback).was_forced());
    }

    #[test]
    fn c2only_ignores_c1() {
        // The C1 scenario from above must NOT force under the weakened
        // spec (this is exactly what makes the certifier catch it).
        let mut c = cells(ExecutorSpec::BhmrC2Only, 3);
        let to_p1 = c[0].before_send(p(1));
        c[1].on_message_arrival(p(0), &to_p1.piggyback);
        c[2].take_basic_checkpoint();
        let m = c[2].before_send(p(0));
        assert!(!c[0].on_message_arrival(p(2), &m.piggyback).was_forced());
        assert!(!c[0].uses_c1());
    }

    #[test]
    fn nosimple_c2_prime_fires_on_new_dep_returning_chain() {
        let mut c = cells(ExecutorSpec::BhmrNoSimple, 2);
        let m1 = c[0].before_send(p(1));
        c[1].on_message_arrival(p(0), &m1.piggyback);
        c[1].take_basic_checkpoint();
        let m2 = c[1].before_send(p(0));
        assert!(c[0].on_message_arrival(p(1), &m2.piggyback).was_forced());
    }

    #[test]
    fn nosimple_is_more_conservative_than_full_bhmr_on_simple_chain() {
        let mut c = cells(ExecutorSpec::BhmrNoSimple, 2);
        let m1 = c[0].before_send(p(1));
        c[1].on_message_arrival(p(0), &m1.piggyback);
        let m2 = c[1].before_send(p(0));
        assert!(c[0].on_message_arrival(p(1), &m2.piggyback).was_forced());
    }

    #[test]
    fn causalonly_diagonal_stays_false() {
        let mut c = cells(ExecutorSpec::BhmrCausalOnly, 2);
        let m1 = c[1].before_send(p(0));
        c[0].on_message_arrival(p(1), &m1.piggyback);
        for k in 0..2 {
            assert!(!c[0].causal_entry(p(k), p(k)));
        }
        assert!(c[0].causal_entry(p(1), p(0)));
    }

    #[test]
    fn causalonly_breaks_same_process_chain_via_c1() {
        let mut c = cells(ExecutorSpec::BhmrCausalOnly, 2);
        let m1 = c[0].before_send(p(1));
        c[1].on_message_arrival(p(0), &m1.piggyback);
        c[1].take_basic_checkpoint();
        let m2 = c[1].before_send(p(0));
        assert!(c[0].on_message_arrival(p(1), &m2.piggyback).was_forced());
    }

    #[test]
    fn causalonly_no_send_no_force() {
        let mut c = cells(ExecutorSpec::BhmrCausalOnly, 2);
        c[1].take_basic_checkpoint();
        let m = c[1].before_send(p(0));
        assert!(!c[0].on_message_arrival(p(1), &m.piggyback).was_forced());
    }

    #[test]
    fn fdas_no_force_before_first_send() {
        let mut c = cells(ExecutorSpec::Fdas, 2);
        c[1].take_basic_checkpoint();
        let m = c[1].before_send(p(0));
        assert!(!c[0].on_message_arrival(p(1), &m.piggyback).was_forced());
        assert_eq!(c[0].tdv_entry(p(1)), 2);
    }

    #[test]
    fn fdas_forces_on_new_dependency_after_send() {
        let mut c = cells(ExecutorSpec::Fdas, 2);
        c[0].before_send(p(1));
        assert!(c[0].after_first_send());
        let m = c[1].before_send(p(0));
        let outcome = c[0].on_message_arrival(p(1), &m.piggyback);
        assert!(outcome.was_forced());
        assert_eq!(outcome.forced.unwrap().id, CheckpointId::new(p(0), 1));
        assert!(!c[0].after_first_send(), "interval reset by checkpoint");
    }

    #[test]
    fn fdi_forces_even_without_send() {
        let mut c = cells(ExecutorSpec::Fdi, 2);
        let m = c[1].before_send(p(0));
        assert!(c[0].on_message_arrival(p(1), &m.piggyback).was_forced());
    }

    #[test]
    fn min_gc_is_tdv_snapshot() {
        let mut c = cells(ExecutorSpec::Bhmr, 3);
        c[1].take_basic_checkpoint();
        let m = c[1].before_send(p(0));
        c[0].on_message_arrival(p(1), &m.piggyback);
        let record = c[0].take_basic_checkpoint();
        assert_eq!(record.min_consistent_gc, Some(vec![1, 2, 0]));
    }

    #[test]
    fn logical_piggyback_bytes_match_legacy_and_kind_table() {
        // Satellite: packed and legacy representations must report the
        // same logical bytes, and both must match ProtocolKind's Table 1
        // accounting formulas.
        let mut legacy = Bhmr::new(4, p(0));
        let legacy_bytes = legacy.before_send(p(1)).piggyback.piggyback_bytes();
        assert_eq!(legacy_bytes, 19);
        let mut c = cells(ExecutorSpec::Bhmr, 4);
        let packed = c[0].before_send(p(1));
        assert_eq!(packed.piggyback.piggyback_bytes(), legacy_bytes);
        assert_eq!(ExecutorSpec::Bhmr.piggyback_bytes(4), legacy_bytes);

        for (spec, kind) in [
            (ExecutorSpec::Bhmr, ProtocolKind::Bhmr),
            (ExecutorSpec::BhmrNoSimple, ProtocolKind::BhmrNoSimple),
            (ExecutorSpec::BhmrCausalOnly, ProtocolKind::BhmrCausalOnly),
            (ExecutorSpec::Fdas, ProtocolKind::Fdas),
            (ExecutorSpec::Fdi, ProtocolKind::Fdi),
        ] {
            for n in [1, 2, 4, 8, 13, 64, 65] {
                assert_eq!(
                    spec.piggyback_bytes(n),
                    kind.piggyback_bytes(n),
                    "{} at n={n}",
                    spec.name()
                );
            }
        }
        // FDAS at n=8: 32 bytes, same as the legacy unit test pins.
        assert_eq!(ExecutorSpec::Fdas.piggyback_bytes(8), 32);
    }

    #[test]
    fn piggyback_sizes_form_the_documented_lattice() {
        let n = 8;
        let full = ExecutorSpec::Bhmr.piggyback_bytes(n);
        let nosimple = ExecutorSpec::BhmrNoSimple.piggyback_bytes(n);
        let causalonly = ExecutorSpec::BhmrCausalOnly.piggyback_bytes(n);
        let fdas = ExecutorSpec::Fdas.piggyback_bytes(n);
        assert!(full > nosimple);
        assert_eq!(nosimple, causalonly);
        assert!(causalonly > fdas);
    }

    #[test]
    fn stats_track_all_events() {
        let mut c = cells(ExecutorSpec::Bhmr, 2);
        let m = c[0].before_send(p(1));
        c[1].on_message_arrival(p(0), &m.piggyback);
        c[0].take_basic_checkpoint();
        assert_eq!(c[0].stats().messages_sent, 1);
        assert_eq!(c[0].stats().basic_checkpoints, 1);
        assert_eq!(c[1].stats().messages_delivered, 1);
        assert_eq!(
            c[0].stats().piggyback_bytes_sent,
            ExecutorSpec::Bhmr.piggyback_bytes(2) as u64
        );
    }

    #[test]
    fn slots_are_recycled_once_piggybacks_drop() {
        let mut c = cells(ExecutorSpec::Bhmr, 2);
        let state = Rc::clone(c[0].state());
        {
            let m = c[0].before_send(p(1));
            assert_eq!(state.arena_slots(), 1);
            assert_eq!(state.arena_free_slots(), 0);
            // Clone bumps the refcount; dropping one clone keeps the slot.
            let extra = m.piggyback.clone();
            drop(extra);
            assert_eq!(state.arena_free_slots(), 0);
            c[1].on_message_arrival(p(0), &m.piggyback);
        }
        assert_eq!(state.arena_free_slots(), 1);
        // The next send reuses the slot instead of growing the arena.
        let _m2 = c[0].before_send(p(1));
        assert_eq!(state.arena_slots(), 1);
        assert_eq!(state.arena_free_slots(), 0);
    }

    #[test]
    fn steady_state_steps_do_not_grow_buffers() {
        // The PR 6 no-alloc-growth idiom: warm up, snapshot capacities,
        // keep working, assert nothing grew. With at most two messages in
        // flight the arena stabilises at two slots.
        let mut c = cells(ExecutorSpec::Bhmr, 3);
        let state = Rc::clone(c[0].state());
        let warm = |c: &mut Vec<ExecutorCell>| {
            for round in 0..20 {
                let a = c[0].before_send(p(1));
                let b = c[1].before_send(p(2));
                c[1].on_message_arrival(p(0), &a.piggyback);
                c[2].on_message_arrival(p(1), &b.piggyback);
                if round % 5 == 0 {
                    c[round % 3].take_basic_checkpoint();
                }
            }
        };
        warm(&mut c);
        let before = state.buffer_capacities();
        let slots_before = state.arena_slots();
        warm(&mut c);
        assert_eq!(state.buffer_capacities(), before);
        assert_eq!(state.arena_slots(), slots_before);
    }

    #[test]
    fn spawner_shares_state_within_a_run_and_resets_between_runs() {
        let make = spawner(ExecutorSpec::Fdas);
        let run1: Vec<ExecutorCell> = (0..3).map(|i| make(3, p(i))).collect();
        assert!(Rc::ptr_eq(run1[0].state(), run1[1].state()));
        assert!(Rc::ptr_eq(run1[0].state(), run1[2].state()));
        let run2: Vec<ExecutorCell> = (0..3).map(|i| make(3, p(i))).collect();
        assert!(Rc::ptr_eq(run2[0].state(), run2[1].state()));
        assert!(!Rc::ptr_eq(run1[0].state(), run2[0].state()));
    }

    #[test]
    fn word_parallel_paths_cover_multiple_words() {
        // 70 processes exercise the two-word (wpr = 2) masks: a C1 hit in
        // the second word and merges across the word boundary.
        let n = 70;
        let mut c = cells(ExecutorSpec::Bhmr, n);
        // P0 sends to P69 (bit 5 of word 1 of sent_to).
        let to_hi = c[0].before_send(p(69));
        c[69].on_message_arrival(p(0), &to_hi.piggyback);
        // P68 checkpoints and sends to P0: fresh dependency on P68 with no
        // causal path from P68's interval to P69 => C1 in word 1.
        c[68].take_basic_checkpoint();
        let m = c[68].before_send(p(0));
        assert!(c[0].on_message_arrival(p(68), &m.piggyback).was_forced());
        assert_eq!(c[0].tdv_entry(p(68)), 2);
        assert!(c[0].causal_entry(p(68), p(0)));
    }

    #[test]
    fn spec_from_kind_covers_exactly_the_dependency_protocols() {
        for &kind in ProtocolKind::all() {
            assert_eq!(
                ExecutorSpec::from_kind(kind).is_some(),
                kind.tracks_dependencies(),
                "{kind:?}"
            );
        }
        assert_eq!(
            ExecutorSpec::from_kind(ProtocolKind::Bhmr),
            Some(ExecutorSpec::Bhmr)
        );
    }

    #[test]
    fn names_match_legacy() {
        assert_eq!(ExecutorSpec::Bhmr.name(), "bhmr");
        assert_eq!(ExecutorSpec::BhmrC2Only.name(), "bhmr-c2only");
        assert_eq!(ExecutorSpec::BhmrNoSimple.name(), "bhmr-nosimple");
        assert_eq!(ExecutorSpec::BhmrCausalOnly.name(), "bhmr-causalonly");
        assert_eq!(ExecutorSpec::Fdas.name(), "fdas");
        assert_eq!(ExecutorSpec::Fdi.name(), "fdi");
    }
}
