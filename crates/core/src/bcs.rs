//! The BCS index-based protocol (Briatico, Ciuffoletti, Simoncini).
//!
//! The oldest communication-induced checkpointing discipline, and the
//! canonical representative of the *weaker* property class the RDT
//! literature contrasts itself against: **Z-cycle freedom** (ZCF, studied
//! as *VP-accordance* in the follow-up work of Baldoni, Quaglia and
//! Ciciani). BCS guarantees that no checkpoint is *useless* — every local
//! checkpoint belongs to some consistent global checkpoint — but **not**
//! RDT: hidden (untrackable) dependencies between checkpoints can remain.

use rdt_causality::{CheckpointId, ProcessId};

use crate::{
    ArrivalOutcome, CheckpointKind, CheckpointRecord, CicProtocol, PiggybackSize, ProtocolStats,
    SendOutcome,
};

/// Piggyback of the BCS protocol: the sender's *epoch* (a scalar
/// Lamport-style clock that ticks on checkpoints).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexPiggyback {
    /// The sender's current epoch.
    pub epoch: u32,
}

impl PiggybackSize for IndexPiggyback {
    fn piggyback_bytes(&self) -> usize {
        4
    }
}

/// **BCS**: every process maintains a scalar *epoch*, incremented at each
/// local checkpoint and piggybacked on every message; a process delivering
/// a message from a **later** epoch first takes a forced checkpoint and
/// jumps to that epoch.
///
/// For every epoch `s`, no message sent at epoch `≥ s` is ever delivered
/// before the receiver's first checkpoint of epoch `≥ s`; the per-epoch
/// cuts are therefore consistent, every checkpoint belongs to one, and the
/// resulting patterns are **Z-cycle-free**.
///
/// BCS does **not** ensure RDT: `ensures_rdt()` is false for
/// [`ProtocolKind::Bcs`](crate::ProtocolKind::Bcs), and the integration
/// tests exhibit BCS runs with untrackable R-paths. This makes it the
/// measuring stick for what RDT costs *beyond* usefulness of checkpoints —
/// with a piggyback of just 4 bytes.
///
/// Note the protocol's *epoch* is distinct from the checkpoint *index*:
/// indices stay dense per process (`C_{i,0}, C_{i,1}, …`) while epochs can
/// jump forward when lagging processes catch up.
///
/// # Example
///
/// ```rust
/// use rdt_causality::ProcessId;
/// use rdt_core::{Bcs, CicProtocol};
///
/// let mut a = Bcs::new(2, ProcessId::new(0));
/// let mut b = Bcs::new(2, ProcessId::new(1));
/// b.take_basic_checkpoint(); // P1's epoch jumps ahead
/// let m = b.before_send(ProcessId::new(0));
/// // P0 lags behind: the arrival forces a checkpoint first.
/// assert!(a.on_message_arrival(ProcessId::new(1), &m.piggyback).was_forced());
/// assert_eq!(a.epoch(), b.epoch());
/// ```
#[derive(Debug, Clone)]
pub struct Bcs {
    me: ProcessId,
    n: usize,
    /// Dense ordinal of the next local checkpoint.
    next_index: u32,
    /// Current epoch (1 = the interval opened by the initial checkpoint).
    epoch: u32,
    stats: ProtocolStats,
}

impl Bcs {
    /// Creates `P_me`'s BCS state for an `n`-process computation and takes
    /// the initial checkpoint `C_{me,0}` (epoch 1).
    ///
    /// # Panics
    ///
    /// Panics if `me` is out of range for `n` processes.
    pub fn new(n: usize, me: ProcessId) -> Self {
        assert!(
            me.index() < n,
            "process {me} out of range for {n} processes"
        );
        Bcs {
            me,
            n,
            next_index: 1,
            epoch: 1,
            stats: ProtocolStats::default(),
        }
    }

    /// The current epoch.
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    fn take_checkpoint(&mut self, kind: CheckpointKind) -> CheckpointRecord {
        let record = CheckpointRecord {
            id: CheckpointId::new(self.me, self.next_index),
            kind,
            min_consistent_gc: None,
        };
        self.next_index += 1;
        record
    }
}

impl CicProtocol for Bcs {
    type Piggyback = IndexPiggyback;

    fn name(&self) -> &'static str {
        "bcs"
    }

    fn process(&self) -> ProcessId {
        self.me
    }

    fn num_processes(&self) -> usize {
        self.n
    }

    fn next_checkpoint_index(&self) -> u32 {
        self.next_index
    }

    fn take_basic_checkpoint(&mut self) -> CheckpointRecord {
        self.stats.basic_checkpoints += 1;
        self.epoch += 1;
        self.take_checkpoint(CheckpointKind::Basic)
    }

    fn before_send(&mut self, _dest: ProcessId) -> SendOutcome<IndexPiggyback> {
        let piggyback = IndexPiggyback { epoch: self.epoch };
        self.stats.messages_sent += 1;
        self.stats.piggyback_bytes_sent += piggyback.piggyback_bytes() as u64;
        SendOutcome {
            piggyback,
            forced_after: None,
        }
    }

    fn on_message_arrival(
        &mut self,
        _sender: ProcessId,
        piggyback: &IndexPiggyback,
    ) -> ArrivalOutcome {
        let forced = if piggyback.epoch > self.epoch {
            // Jump to the sender's epoch; the forced checkpoint opens it,
            // so the delivery lands at an epoch >= the send's.
            self.epoch = piggyback.epoch;
            self.stats.forced_checkpoints += 1;
            Some(self.take_checkpoint(CheckpointKind::Forced))
        } else {
            None
        };
        self.stats.messages_delivered += 1;
        ArrivalOutcome { forced }
    }

    fn stats(&self) -> &ProtocolStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn initial_state() {
        let bcs = Bcs::new(3, p(1));
        assert_eq!(bcs.next_checkpoint_index(), 1);
        assert_eq!(bcs.epoch(), 1);
        assert_eq!(bcs.name(), "bcs");
        assert_eq!(bcs.num_processes(), 3);
    }

    #[test]
    fn same_epoch_messages_never_force() {
        let mut a = Bcs::new(2, p(0));
        let mut b = Bcs::new(2, p(1));
        let m = b.before_send(p(0));
        assert!(!a.on_message_arrival(p(1), &m.piggyback).was_forced());
        assert_eq!(a.epoch(), 1);
    }

    #[test]
    fn higher_epoch_forces_and_aligns() {
        let mut a = Bcs::new(2, p(0));
        let mut b = Bcs::new(2, p(1));
        b.take_basic_checkpoint();
        b.take_basic_checkpoint(); // b's epoch is now 3
        let m = b.before_send(p(0));
        let outcome = a.on_message_arrival(p(1), &m.piggyback);
        assert!(outcome.was_forced());
        // Indices stay dense even though the epoch jumped by 2.
        assert_eq!(outcome.forced.unwrap().id.index, 1);
        assert_eq!(a.next_checkpoint_index(), 2);
        assert_eq!(a.epoch(), 3);
    }

    #[test]
    fn lower_or_equal_epoch_does_not_force() {
        let mut a = Bcs::new(2, p(0));
        a.take_basic_checkpoint();
        a.take_basic_checkpoint();
        let mut b = Bcs::new(2, p(1));
        let m = b.before_send(p(0));
        assert!(!a.on_message_arrival(p(1), &m.piggyback).was_forced());
        assert_eq!(a.epoch(), 3);
    }

    #[test]
    fn piggyback_is_four_bytes_regardless_of_n() {
        let mut a = Bcs::new(64, p(0));
        let m = a.before_send(p(1));
        assert_eq!(m.piggyback.piggyback_bytes(), 4);
        assert_eq!(a.stats().piggyback_bytes_sent, 4);
    }

    #[test]
    fn stats_counted() {
        let mut a = Bcs::new(2, p(0));
        a.take_basic_checkpoint();
        let mut b = Bcs::new(2, p(1));
        b.take_basic_checkpoint();
        b.take_basic_checkpoint();
        let m = b.before_send(p(0));
        a.on_message_arrival(p(1), &m.piggyback);
        assert_eq!(a.stats().basic_checkpoints, 1);
        assert_eq!(a.stats().forced_checkpoints, 1);
        assert_eq!(a.stats().messages_delivered, 1);
    }

    #[test]
    fn no_min_gc_reported() {
        let mut a = Bcs::new(2, p(0));
        assert_eq!(a.take_basic_checkpoint().min_consistent_gc, None);
    }
}
