//! Communication-induced checkpointing (CIC) protocols that ensure the
//! **Rollback-Dependency Trackability** (RDT) property.
//!
//! This crate is the primary contribution of the reproduced paper
//! (Baldoni, Hélary, Mostefaoui, Raynal — *"A Communication-Induced
//! Checkpointing Protocol that Ensures Rollback-Dependency Trackability"*;
//! the theory is further developed in *"Rollback-Dependency Trackability:
//! Visible Characterizations"*, PODC 1999). It provides:
//!
//! * [`CicProtocol`] — protocols as pure, deterministic state machines
//!   driven by three events: *take a basic checkpoint*, *send a message*,
//!   *message arrival*. No I/O, no clocks, no threads: the same
//!   implementation runs inside the discrete-event simulator
//!   (`rdt-sim`) and inside offline replayers and tests.
//! * [`Bhmr`] — the paper's protocol (§4), piggybacking a transitive
//!   dependency vector `TDV`, a boolean vector `simple` and a boolean
//!   matrix `causal`, and forcing a checkpoint exactly when the predicate
//!   `C1 ∨ C2` holds.
//! * [`BhmrNoSimple`] and [`BhmrCausalOnly`] — the two weaker variants of
//!   §5.1 (predicate `C1 ∨ C2'`, and `C1` alone with a permanently-false
//!   `causal` diagonal).
//! * [`Fdas`] and [`Fdi`] — Wang's *Fixed-Dependency-After-Send* and
//!   *Fixed-Dependency-Interval* baselines (§5.2).
//! * [`Cbr`], [`Cas`], [`Nras`] — the classical checkpoint-before-receive,
//!   checkpoint-after-send and no-receive-after-send protocols, and
//!   [`Uncoordinated`] — no forced checkpoints at all (violates RDT; used
//!   as a negative control).
//! * [`Bcs`] — the index-based Briatico–Ciuffoletti–Simoncini protocol:
//!   guarantees only the weaker *Z-cycle-freedom* property (no useless
//!   checkpoints), anchoring the property lattice below RDT.
//!
//! Every RDT-ensuring protocol in this crate satisfies the *protocol
//! lattice* of §5.2: on the same schedule, `Bhmr` forces no more
//! checkpoints than its variants, which force no more than `Fdas`.
//!
//! # Quick example
//!
//! ```rust
//! use rdt_causality::ProcessId;
//! use rdt_core::{Bhmr, CicProtocol};
//!
//! // Two processes; drive P0 and P1 by hand.
//! let mut p0 = Bhmr::new(2, ProcessId::new(0));
//! let mut p1 = Bhmr::new(2, ProcessId::new(1));
//!
//! // P1 sends m to P0.
//! let send = p1.before_send(ProcessId::new(0));
//! // P0 delivers m; the protocol decides whether a forced checkpoint is due.
//! let arrival = p0.on_message_arrival(ProcessId::new(1), &send.piggyback);
//! assert!(arrival.forced.is_none()); // first message can never create a hidden dependency
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bcs;
mod bhmr;
mod executor;
mod fdas;
mod kind;
mod protocol;
mod simple_protocols;
mod variants;

pub use bcs::{Bcs, IndexPiggyback};
pub use bhmr::{Bhmr, BhmrPiggyback};
pub use executor::{spawner, ExecutorCell, ExecutorSpec, ExecutorState, PackedPiggyback};
pub use fdas::{Fdas, Fdi, TdvPiggyback};
pub use kind::ProtocolKind;
pub use protocol::{
    ArrivalOutcome, CheckpointKind, CheckpointRecord, CicProtocol, PiggybackSize, ProtocolStats,
    SendOutcome,
};
pub use simple_protocols::{Cas, Cbr, EmptyPiggyback, Nras, Uncoordinated};
pub use variants::{BhmrCausalOnly, BhmrNoSimple, CausalOnlyPiggyback, NoSimplePiggyback};
