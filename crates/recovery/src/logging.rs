//! Message logging and output commit on top of recovery lines.
//!
//! Rolling back to a consistent line leaves two classes of messages to
//! deal with (§1 of the paper lists output commit among the dependability
//! problems RDT serves):
//!
//! * **lost / in-transit** messages — sent inside the line, not delivered
//!   inside it: they must be *replayed* from sender-side logs (or their
//!   loss tolerated);
//! * **outputs** — effects released to the outside world cannot be
//!   retracted, so an output may only be *committed* once no future
//!   rollback can undo its causal past. With RDT that test is exactly the
//!   minimum consistent global checkpoint the protocol already computes on
//!   the fly (Corollary 4.5): the output commits when every member of that
//!   global checkpoint is on stable storage.

use rdt_causality::{CheckpointId, ProcessId};
use rdt_rgraph::{min_max, GlobalCheckpoint, Pattern, PatternMessageId};

use crate::{lost_messages, Failure};

/// The replay obligations of a rollback to `line`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayPlan {
    /// The line being recovered to.
    pub line: GlobalCheckpoint,
    /// Messages whose sends survive the rollback but whose deliveries do
    /// not: they must be re-delivered from sender logs (in-transit
    /// messages included).
    pub replay: Vec<PatternMessageId>,
    /// Messages fully rolled back (send undone): their log entries can be
    /// dropped.
    pub discard: Vec<PatternMessageId>,
}

impl ReplayPlan {
    /// Total messages a sender-based logging scheme must have kept for
    /// this recovery to be lossless.
    pub fn log_entries_needed(&self) -> usize {
        self.replay.len()
    }
}

/// Computes the [`ReplayPlan`] for recovering `pattern` to the line implied
/// by `failures`.
///
/// # Panics
///
/// Panics if a failure names an out-of-range process.
pub fn replay_plan(pattern: &Pattern, failures: &[Failure]) -> ReplayPlan {
    let line = crate::recovery_line(pattern, failures);
    let replay = lost_messages(pattern, &line);
    let discard = (0..pattern.num_messages())
        .map(PatternMessageId)
        .filter(|&m| {
            let send = pattern.send_interval(m);
            send.index > line.get(send.process)
        })
        .collect();
    ReplayPlan {
        line,
        replay,
        discard,
    }
}

/// The commit requirement of an output released while checkpoint
/// `at` was the most recent local checkpoint of its process: the minimum
/// consistent global checkpoint containing `at`.
///
/// Once every member of the returned global checkpoint is on stable
/// storage, no rollback can revisit the output's causal past, and the
/// output may be released. Returns `None` when `at` belongs to no
/// consistent global checkpoint (impossible under an RDT or ZCF protocol).
///
/// Under RDT, this equals the `TDV` the protocol saved with the checkpoint
/// (Corollary 4.5) — i.e. the commit test needs **no extra computation**
/// at runtime; this function is the independent offline witness.
pub fn output_commit_requirement(pattern: &Pattern, at: CheckpointId) -> Option<GlobalCheckpoint> {
    min_max::min_consistent_containing(pattern, &[at])
}

/// Commit latency of an output, measured in checkpoints: how many
/// checkpoints beyond the stable prefix each process must still secure
/// before the output can be released.
///
/// `stable` is the per-process index of the newest checkpoint already on
/// stable storage. Returns `None` if the output can never commit.
pub fn output_commit_lag(
    pattern: &Pattern,
    at: CheckpointId,
    stable: &GlobalCheckpoint,
) -> Option<u32> {
    let requirement = output_commit_requirement(pattern, at)?;
    Some(
        (0..pattern.num_processes())
            .map(|i| {
                let p = ProcessId::new(i);
                requirement.get(p).saturating_sub(stable.get(p))
            })
            .max()
            .unwrap_or(0),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdt_rgraph::paper_figures;

    fn c(i: usize, x: u32) -> CheckpointId {
        CheckpointId::new(ProcessId::new(i), x)
    }

    #[test]
    fn replay_plan_of_figure_1_rollback() {
        let pattern = paper_figures::figure_1();
        // Roll P_j back to C_(j,1): line [3,1,1].
        let plan = replay_plan(
            &pattern,
            &[Failure {
                process: ProcessId::new(1),
                resume_cap: 1,
            }],
        );
        assert_eq!(plan.line.as_slice(), &[3, 1, 1]);
        // m5 (sent I_(i,3) kept, delivered I_(j,2) undone) must be replayed.
        assert_eq!(plan.replay.len(), 1);
        assert_eq!(plan.log_entries_needed(), 1);
        // m4, m6 (sent I_(j,2)) and m7 (sent I_(k,3)) are rolled back.
        assert_eq!(plan.discard.len(), 3);
    }

    #[test]
    fn replay_and_discard_are_disjoint() {
        let pattern = paper_figures::figure_1();
        let plan = replay_plan(
            &pattern,
            &[Failure {
                process: ProcessId::new(0),
                resume_cap: 1,
            }],
        );
        for m in &plan.replay {
            assert!(!plan.discard.contains(m));
        }
    }

    #[test]
    fn output_commit_requirement_matches_min_gc() {
        let pattern = paper_figures::figure_1();
        let req = output_commit_requirement(&pattern, c(0, 2)).unwrap();
        assert_eq!(req.as_slice(), &[2, 1, 1]);
    }

    #[test]
    fn commit_lag_counts_missing_stable_checkpoints() {
        let pattern = paper_figures::figure_1();
        // Nothing stable yet beyond the initial checkpoints.
        let stable = GlobalCheckpoint::initial(3);
        assert_eq!(output_commit_lag(&pattern, c(0, 2), &stable), Some(2));
        // Once [2,1,1] is stable, the lag is zero.
        let stable = GlobalCheckpoint::new(vec![2, 1, 1]);
        assert_eq!(output_commit_lag(&pattern, c(0, 2), &stable), Some(0));
    }

    #[test]
    fn useless_checkpoint_never_commits() {
        let pattern = paper_figures::figure_4_unbroken();
        // C_(k,1) (process 1) is on a Z-cycle.
        assert_eq!(output_commit_requirement(&pattern, c(1, 1)), None);
        assert_eq!(
            output_commit_lag(&pattern, c(1, 1), &GlobalCheckpoint::initial(2)),
            None
        );
    }
}
