//! Recovery lines and rollback analysis.

use rdt_causality::ProcessId;
use rdt_rgraph::{consistency, GlobalCheckpoint, Pattern, PatternMessageId};

/// A failure: the process loses its volatile state and can resume from any
/// checkpoint with index `≤ resume_cap` (its stable checkpoints).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Failure {
    /// The failed process.
    pub process: ProcessId,
    /// Highest checkpoint index the process can restart from.
    pub resume_cap: u32,
}

impl Failure {
    /// A failure of `process` right after its last recorded checkpoint —
    /// the most favourable case (nothing of its checkpointed history is
    /// lost).
    pub fn at_last_checkpoint(pattern: &Pattern, process: ProcessId) -> Self {
        Failure {
            process,
            resume_cap: pattern.last_checkpoint_index(process),
        }
    }
}

/// Computes the **recovery line**: the componentwise-latest consistent
/// global checkpoint in which every failed process is at or below its
/// resume cap.
///
/// Greatest fixpoint of the orphan constraints, driven downward: start
/// from the last checkpoints (capped at the failures) and, while some
/// message would be delivered inside the line but sent outside it, move
/// the receiver below the delivery. The all-initial global checkpoint is
/// always consistent, so the line always exists; the *domino effect* is
/// precisely this fixpoint descending far below the failure (possibly all
/// the way to the initial states).
///
/// # Panics
///
/// Panics if a failure names an out-of-range process.
pub fn recovery_line(pattern: &Pattern, failures: &[Failure]) -> GlobalCheckpoint {
    let n = pattern.num_processes();
    let mut line = GlobalCheckpoint::new(
        (0..n)
            .map(|i| pattern.last_checkpoint_index(ProcessId::new(i)))
            .collect(),
    );
    for failure in failures {
        let current = line.get(failure.process);
        line.set(failure.process, current.min(failure.resume_cap));
    }

    let delivered: Vec<_> = pattern.delivered_messages().collect();
    loop {
        let mut changed = false;
        for &(_, send, deliver) in &delivered {
            if send.index > line.get(send.process) && deliver.index <= line.get(deliver.process) {
                line.set(deliver.process, deliver.index - 1);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    debug_assert!(consistency::is_consistent(pattern, &line));
    line
}

/// Messages **lost** by rolling back to `line`: sent inside the line but
/// delivered outside it (or never delivered). A recovery mechanism must
/// replay them from message logs, or the application must tolerate their
/// loss.
pub fn lost_messages(pattern: &Pattern, line: &GlobalCheckpoint) -> Vec<PatternMessageId> {
    (0..pattern.num_messages())
        .map(PatternMessageId)
        .filter(|&m| {
            let send = pattern.send_interval(m);
            if send.index > line.get(send.process) {
                return false; // send itself is rolled back
            }
            match pattern.deliver_interval(m) {
                None => true, // in transit
                Some(deliver) => deliver.index > line.get(deliver.process),
            }
        })
        .collect()
}

/// Everything a rollback analysis reports.
#[derive(Debug, Clone, PartialEq)]
pub struct RollbackReport {
    /// The recovery line.
    pub line: GlobalCheckpoint,
    /// Per process, how many checkpoints the rollback discards
    /// (`last index - line index`).
    pub discarded_per_process: Vec<u32>,
    /// Total discarded checkpoints across all processes.
    pub total_discarded: u64,
    /// Number of processes rolled all the way back to their initial state.
    pub rolled_to_initial: usize,
    /// Messages that must be replayed from logs (or tolerated as lost).
    pub lost_messages: usize,
}

impl RollbackReport {
    /// Mean checkpoints discarded per process.
    pub fn mean_discarded(&self) -> f64 {
        if self.discarded_per_process.is_empty() {
            0.0
        } else {
            self.total_discarded as f64 / self.discarded_per_process.len() as f64
        }
    }
}

/// Computes the recovery line for `failures` and summarizes the damage.
///
/// # Panics
///
/// Panics if a failure names an out-of-range process.
///
/// # Example
///
/// ```rust
/// use rdt_causality::ProcessId;
/// use rdt_recovery::{analyze, Failure};
/// use rdt_rgraph::paper_figures;
///
/// let pattern = paper_figures::figure_1();
/// // P_j (process 1) fails and can resume from C_(j,1).
/// let report = analyze(&pattern, &[Failure { process: ProcessId::new(1), resume_cap: 1 }]);
/// assert_eq!(report.line.as_slice(), &[3, 1, 1]);
/// ```
pub fn analyze(pattern: &Pattern, failures: &[Failure]) -> RollbackReport {
    let line = recovery_line(pattern, failures);
    let n = pattern.num_processes();
    let discarded_per_process: Vec<u32> = (0..n)
        .map(|i| {
            let p = ProcessId::new(i);
            pattern.last_checkpoint_index(p) - line.get(p)
        })
        .collect();
    let total_discarded = discarded_per_process.iter().map(|&d| d as u64).sum();
    let rolled_to_initial = (0..n)
        .filter(|&i| {
            let p = ProcessId::new(i);
            line.get(p) == 0 && pattern.last_checkpoint_index(p) > 0
        })
        .count();
    let lost = lost_messages(pattern, &line).len();
    RollbackReport {
        line,
        discarded_per_process,
        total_discarded,
        rolled_to_initial,
        lost_messages: lost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdt_rgraph::paper_figures;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn no_failure_line_is_latest_consistent() {
        let pattern = paper_figures::figure_1();
        let line = recovery_line(&pattern, &[]);
        // The final global checkpoint of figure 1 is consistent.
        assert_eq!(line.as_slice(), &[3, 3, 3]);
    }

    #[test]
    fn failure_caps_propagate() {
        let pattern = paper_figures::figure_1();
        // P_j fails back to C_(j,1): m4/m6 deliveries at P_k must go, so
        // P_k falls to C_(k,1); P_i keeps everything.
        let report = analyze(
            &pattern,
            &[Failure {
                process: p(1),
                resume_cap: 1,
            }],
        );
        assert_eq!(report.line.as_slice(), &[3, 1, 1]);
        assert_eq!(report.discarded_per_process, vec![0, 2, 2]);
        assert_eq!(report.total_discarded, 4);
        assert_eq!(report.rolled_to_initial, 0);
    }

    #[test]
    fn lost_messages_are_replay_candidates() {
        let pattern = paper_figures::figure_1();
        let line = recovery_line(
            &pattern,
            &[Failure {
                process: p(1),
                resume_cap: 1,
            }],
        );
        // Line [3,1,1]: m5 (sent I_(i,3), delivered I_(j,2) > 1) is lost;
        // m4/m6 were sent in I_(j,2) — rolled back, not lost; m7 sent
        // I_(k,3) — rolled back; m2 delivered I_(i,2) <= 3 kept.
        let lost = lost_messages(&pattern, &line);
        assert_eq!(lost.len(), 1);
    }

    #[test]
    fn resume_cap_zero_forces_initial_for_that_process() {
        let pattern = paper_figures::figure_1();
        let report = analyze(
            &pattern,
            &[Failure {
                process: p(0),
                resume_cap: 0,
            }],
        );
        assert_eq!(report.line.get(p(0)), 0);
        // Everything delivered from P_i's intervals >= 1 must unwind:
        // m1 (I_(i,1) -> I_(j,1)) forces P_j to 0; m3's delivery (I_(j,1))
        // is then dropped anyway; P_k loses m4/m6 deliveries -> 1, and m2's
        // send... P_k only received from P_j. Check consistency directly.
        assert!(consistency::is_consistent(&pattern, &report.line));
        assert_eq!(report.line.get(p(1)), 0);
    }

    #[test]
    fn at_last_checkpoint_helper() {
        let pattern = paper_figures::figure_1();
        let f = Failure::at_last_checkpoint(&pattern, p(2));
        assert_eq!(f.resume_cap, 3);
    }

    #[test]
    fn report_mean() {
        let report = RollbackReport {
            line: GlobalCheckpoint::new(vec![0, 0]),
            discarded_per_process: vec![2, 4],
            total_discarded: 6,
            rolled_to_initial: 2,
            lost_messages: 0,
        };
        assert!((report.mean_discarded() - 3.0).abs() < 1e-12);
    }
}
