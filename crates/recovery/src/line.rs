//! Recovery lines and rollback analysis.
//!
//! # Indexing convention (audited against `rgraph::pattern`)
//!
//! Checkpoint indices and interval indices interleave as
//! `C_0 < I_1 < C_1 < I_2 < …`: interval `k` is the open stretch of events
//! *between* checkpoints `k-1` and `k`, so `Pattern::interval_of` is
//! **1-based** — a delivery can never sit in an "interval 0" (there is no
//! execution before the initial checkpoint `C_0`). The orphan-descent step
//! `line[q] = deliver.index - 1` therefore bottoms out at the initial
//! checkpoint `0` and cannot underflow on a valid [`Pattern`]. What *could*
//! abort a long sweep was a [`Failure`] naming an out-of-range process,
//! which panicked deep inside the descent; the fallible entry points
//! ([`try_recovery_line`], [`try_lost_messages`], [`try_analyze`]) report
//! that as a [`RecoveryError`] instead.

use std::fmt;

use rdt_causality::ProcessId;
use rdt_rgraph::{consistency, GlobalCheckpoint, Pattern, PatternMessageId};

/// A failure: the process loses its volatile state and can resume from any
/// checkpoint with index `≤ resume_cap` (its stable checkpoints).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Failure {
    /// The failed process.
    pub process: ProcessId,
    /// Highest checkpoint index the process can restart from.
    pub resume_cap: u32,
}

impl Failure {
    /// A failure of `process` right after its last recorded checkpoint —
    /// the most favourable case (nothing of its checkpointed history is
    /// lost).
    pub fn at_last_checkpoint(pattern: &Pattern, process: ProcessId) -> Self {
        Failure {
            process,
            resume_cap: pattern.last_checkpoint_index(process),
        }
    }
}

/// A malformed rollback request, reported instead of panicking so one bad
/// failure spec cannot abort a long sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryError {
    /// A [`Failure`] named a process the pattern does not have.
    ProcessOutOfRange {
        /// The offending process index.
        process: usize,
        /// How many processes the pattern has.
        num_processes: usize,
    },
    /// A global checkpoint's width does not match the pattern.
    LineWidthMismatch {
        /// Number of entries in the supplied line.
        line: usize,
        /// How many processes the pattern has.
        num_processes: usize,
    },
}

impl fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            RecoveryError::ProcessOutOfRange {
                process,
                num_processes,
            } => write!(
                f,
                "failure names process {process} but the pattern has {num_processes} processes"
            ),
            RecoveryError::LineWidthMismatch {
                line,
                num_processes,
            } => write!(
                f,
                "global checkpoint has {line} entries but the pattern has {num_processes} processes"
            ),
        }
    }
}

impl std::error::Error for RecoveryError {}

/// Computes the **recovery line**: the componentwise-latest consistent
/// global checkpoint in which every failed process is at or below its
/// resume cap.
///
/// Greatest fixpoint of the orphan constraints, driven downward: start
/// from the last checkpoints (capped at the failures) and, while some
/// message would be delivered inside the line but sent outside it, move
/// the receiver below the delivery. The all-initial global checkpoint is
/// always consistent, so the line always exists; the *domino effect* is
/// precisely this fixpoint descending far below the failure (possibly all
/// the way to the initial states).
///
/// The descent runs a worklist seeded from the processes whose line entry
/// can already orphan one of their sends (the capped failures, plus
/// senders with messages leaving the open interval past their last
/// checkpoint); each entry only ever decreases, so the scan touches a
/// sender's messages only when its entry actually moved instead of
/// rescanning every delivered message per round. [`recovery_line_naive`]
/// keeps the textbook full-rescan fixpoint as a differential oracle.
pub fn try_recovery_line(
    pattern: &Pattern,
    failures: &[Failure],
) -> Result<GlobalCheckpoint, RecoveryError> {
    let n = pattern.num_processes();
    let mut line: Vec<u32> = (0..n)
        .map(|i| pattern.last_checkpoint_index(ProcessId::new(i)))
        .collect();
    for failure in failures {
        let i = failure.process.index();
        if i >= n {
            return Err(RecoveryError::ProcessOutOfRange {
                process: i,
                num_processes: n,
            });
        }
        line[i] = line[i].min(failure.resume_cap);
    }

    // Per-sender index: (send interval, receiver, deliver interval).
    let mut by_sender: Vec<Vec<(u32, usize, u32)>> = vec![Vec::new(); n];
    for (_, send, deliver) in pattern.delivered_messages() {
        by_sender[send.process.index()].push((send.index, deliver.process.index(), deliver.index));
    }

    let mut queued = vec![false; n];
    let mut work: Vec<usize> = Vec::with_capacity(n);
    for p in 0..n {
        if by_sender[p].iter().any(|&(send, _, _)| send > line[p]) {
            queued[p] = true;
            work.push(p);
        }
    }
    while let Some(p) = work.pop() {
        queued[p] = false;
        for &(send, q, deliver) in &by_sender[p] {
            // Read both entries fresh each step: lowering line[q] inside
            // this scan must be visible to the remaining messages.
            if send > line[p] && deliver <= line[q] {
                // Intervals are 1-based, so deliver >= 1: the receiver
                // lands on checkpoint deliver - 1, at worst its initial
                // checkpoint 0.
                debug_assert!(deliver >= 1, "delivery in a nonexistent interval 0");
                line[q] = deliver - 1;
                if !queued[q] {
                    queued[q] = true;
                    work.push(q);
                }
            }
        }
    }

    let line = GlobalCheckpoint::new(line);
    debug_assert!(consistency::is_consistent(pattern, &line));
    #[cfg(test)]
    assert!(
        consistency::is_consistent(pattern, &line),
        "recovery line must be consistent"
    );
    Ok(line)
}

/// Infallible wrapper around [`try_recovery_line`].
///
/// # Panics
///
/// Panics if a failure names an out-of-range process.
pub fn recovery_line(pattern: &Pattern, failures: &[Failure]) -> GlobalCheckpoint {
    match try_recovery_line(pattern, failures) {
        Ok(line) => line,
        Err(e) => panic!("recovery_line: {e}"),
    }
}

/// The textbook fixpoint: rescan *every* delivered message until a full
/// round changes nothing. O(messages × descent-steps); kept public as the
/// reference implementation the worklist version is differentially tested
/// against.
pub fn recovery_line_naive(pattern: &Pattern, failures: &[Failure]) -> GlobalCheckpoint {
    let n = pattern.num_processes();
    let mut line = GlobalCheckpoint::new(
        (0..n)
            .map(|i| pattern.last_checkpoint_index(ProcessId::new(i)))
            .collect(),
    );
    for failure in failures {
        assert!(
            failure.process.index() < n,
            "failure names out-of-range process {}",
            failure.process
        );
        let current = line.get(failure.process);
        line.set(failure.process, current.min(failure.resume_cap));
    }

    let delivered: Vec<_> = pattern.delivered_messages().collect();
    loop {
        let mut changed = false;
        for &(_, send, deliver) in &delivered {
            if send.index > line.get(send.process) && deliver.index <= line.get(deliver.process) {
                line.set(deliver.process, deliver.index - 1);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    debug_assert!(consistency::is_consistent(pattern, &line));
    line
}

/// Messages **lost** by rolling back to `line`: sent inside the line but
/// delivered outside it (or never delivered). A recovery mechanism must
/// replay them from message logs, or the application must tolerate their
/// loss.
pub fn try_lost_messages(
    pattern: &Pattern,
    line: &GlobalCheckpoint,
) -> Result<Vec<PatternMessageId>, RecoveryError> {
    if line.as_slice().len() != pattern.num_processes() {
        return Err(RecoveryError::LineWidthMismatch {
            line: line.as_slice().len(),
            num_processes: pattern.num_processes(),
        });
    }
    Ok((0..pattern.num_messages())
        .map(PatternMessageId)
        .filter(|&m| {
            let send = pattern.send_interval(m);
            if send.index > line.get(send.process) {
                return false; // send itself is rolled back
            }
            match pattern.deliver_interval(m) {
                None => true, // in transit
                Some(deliver) => deliver.index > line.get(deliver.process),
            }
        })
        .collect())
}

/// Infallible wrapper around [`try_lost_messages`].
///
/// # Panics
///
/// Panics if `line` has the wrong number of entries for `pattern`.
pub fn lost_messages(pattern: &Pattern, line: &GlobalCheckpoint) -> Vec<PatternMessageId> {
    match try_lost_messages(pattern, line) {
        Ok(lost) => lost,
        Err(e) => panic!("lost_messages: {e}"),
    }
}

/// Everything a rollback analysis reports.
#[derive(Debug, Clone, PartialEq)]
pub struct RollbackReport {
    /// The recovery line.
    pub line: GlobalCheckpoint,
    /// Per process, how many checkpoints the rollback discards
    /// (`last index - line index`).
    pub discarded_per_process: Vec<u32>,
    /// Total discarded checkpoints across all processes.
    pub total_discarded: u64,
    /// Number of processes rolled all the way back to their initial state.
    pub rolled_to_initial: usize,
    /// Messages that must be replayed from logs (or tolerated as lost).
    pub lost_messages: usize,
}

impl RollbackReport {
    /// Mean checkpoints discarded per process.
    pub fn mean_discarded(&self) -> f64 {
        if self.discarded_per_process.is_empty() {
            0.0
        } else {
            self.total_discarded as f64 / self.discarded_per_process.len() as f64
        }
    }
}

/// Computes the recovery line for `failures` and summarizes the damage.
pub fn try_analyze(
    pattern: &Pattern,
    failures: &[Failure],
) -> Result<RollbackReport, RecoveryError> {
    let line = try_recovery_line(pattern, failures)?;
    let n = pattern.num_processes();
    let discarded_per_process: Vec<u32> = (0..n)
        .map(|i| {
            let p = ProcessId::new(i);
            pattern.last_checkpoint_index(p) - line.get(p)
        })
        .collect();
    let total_discarded = discarded_per_process.iter().map(|&d| d as u64).sum();
    let rolled_to_initial = (0..n)
        .filter(|&i| {
            let p = ProcessId::new(i);
            line.get(p) == 0 && pattern.last_checkpoint_index(p) > 0
        })
        .count();
    let lost = try_lost_messages(pattern, &line)?.len();
    Ok(RollbackReport {
        line,
        discarded_per_process,
        total_discarded,
        rolled_to_initial,
        lost_messages: lost,
    })
}

/// Infallible wrapper around [`try_analyze`].
///
/// # Panics
///
/// Panics if a failure names an out-of-range process.
///
/// # Example
///
/// ```rust
/// use rdt_causality::ProcessId;
/// use rdt_recovery::{analyze, Failure};
/// use rdt_rgraph::paper_figures;
///
/// let pattern = paper_figures::figure_1();
/// // P_j (process 1) fails and can resume from C_(j,1).
/// let report = analyze(&pattern, &[Failure { process: ProcessId::new(1), resume_cap: 1 }]);
/// assert_eq!(report.line.as_slice(), &[3, 1, 1]);
/// ```
pub fn analyze(pattern: &Pattern, failures: &[Failure]) -> RollbackReport {
    match try_analyze(pattern, failures) {
        Ok(report) => report,
        Err(e) => panic!("analyze: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domino_pattern;
    use rdt_rgraph::{paper_figures, PatternBuilder};

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn no_failure_line_is_latest_consistent() {
        let pattern = paper_figures::figure_1();
        let line = recovery_line(&pattern, &[]);
        // The final global checkpoint of figure 1 is consistent.
        assert_eq!(line.as_slice(), &[3, 3, 3]);
    }

    #[test]
    fn failure_caps_propagate() {
        let pattern = paper_figures::figure_1();
        // P_j fails back to C_(j,1): m4/m6 deliveries at P_k must go, so
        // P_k falls to C_(k,1); P_i keeps everything.
        let report = analyze(
            &pattern,
            &[Failure {
                process: p(1),
                resume_cap: 1,
            }],
        );
        assert_eq!(report.line.as_slice(), &[3, 1, 1]);
        assert_eq!(report.discarded_per_process, vec![0, 2, 2]);
        assert_eq!(report.total_discarded, 4);
        assert_eq!(report.rolled_to_initial, 0);
    }

    #[test]
    fn lost_messages_are_replay_candidates() {
        let pattern = paper_figures::figure_1();
        let line = recovery_line(
            &pattern,
            &[Failure {
                process: p(1),
                resume_cap: 1,
            }],
        );
        // Line [3,1,1]: m5 (sent I_(i,3), delivered I_(j,2) > 1) is lost;
        // m4/m6 were sent in I_(j,2) — rolled back, not lost; m7 sent
        // I_(k,3) — rolled back; m2 delivered I_(i,2) <= 3 kept.
        let lost = lost_messages(&pattern, &line);
        assert_eq!(lost.len(), 1);
    }

    #[test]
    fn resume_cap_zero_forces_initial_for_that_process() {
        let pattern = paper_figures::figure_1();
        let report = analyze(
            &pattern,
            &[Failure {
                process: p(0),
                resume_cap: 0,
            }],
        );
        assert_eq!(report.line.get(p(0)), 0);
        // Everything delivered from P_i's intervals >= 1 must unwind:
        // m1 (I_(i,1) -> I_(j,1)) forces P_j to 0; m3's delivery (I_(j,1))
        // is then dropped anyway; P_k loses m4/m6 deliveries -> 1, and m2's
        // send... P_k only received from P_j. Check consistency directly.
        assert!(consistency::is_consistent(&pattern, &report.line));
        assert_eq!(report.line.get(p(1)), 0);
    }

    #[test]
    fn orphan_delivery_in_first_interval_descends_to_initial_checkpoint() {
        // Regression for the descent's lower boundary: a delivery in the
        // *first* interval whose send is orphaned must drop the receiver to
        // its initial checkpoint (index 0) — the `deliver - 1` step lands
        // exactly on 0 and must not wrap.
        let mut b = PatternBuilder::new(2);
        let m = b.send(p(0), p(1));
        b.deliver(m).unwrap();
        b.checkpoint(p(1));
        let pattern = b.build().unwrap();
        // P0 never checkpoints after the send, so even with no failure the
        // send sits past P0's line entry (0) while the delivery sits inside
        // P1's (interval 1 <= checkpoint 1): orphan, P1 descends to 0.
        let line = recovery_line(&pattern, &[]);
        assert_eq!(line.as_slice(), &[0, 0]);
        assert!(consistency::is_consistent(&pattern, &line));
    }

    #[test]
    fn domino_failure_rolls_both_processes_to_initial() {
        // The staggered ping-pong grazes the interval-1 boundary on every
        // descent step; any failure collapses the line to the initial
        // states.
        let pattern = domino_pattern(5);
        let report = analyze(
            &pattern,
            &[Failure {
                process: p(0),
                resume_cap: 4,
            }],
        );
        assert_eq!(report.line.as_slice(), &[0, 0]);
        assert_eq!(report.rolled_to_initial, 2);
    }

    #[test]
    fn out_of_range_failure_is_reported_not_panicked() {
        let pattern = paper_figures::figure_1();
        let bad = [Failure {
            process: p(7),
            resume_cap: 0,
        }];
        assert_eq!(
            try_recovery_line(&pattern, &bad),
            Err(RecoveryError::ProcessOutOfRange {
                process: 7,
                num_processes: 3
            })
        );
        assert!(try_analyze(&pattern, &bad).is_err());
        let msg = try_recovery_line(&pattern, &bad).unwrap_err().to_string();
        assert!(msg.contains("process 7"), "unhelpful message: {msg}");
    }

    #[test]
    fn mismatched_line_width_is_reported() {
        let pattern = paper_figures::figure_1();
        let narrow = GlobalCheckpoint::new(vec![0, 0]);
        assert_eq!(
            try_lost_messages(&pattern, &narrow),
            Err(RecoveryError::LineWidthMismatch {
                line: 2,
                num_processes: 3
            })
        );
    }

    #[test]
    #[should_panic(expected = "names process 9")]
    fn infallible_wrapper_still_panics() {
        let pattern = paper_figures::figure_1();
        recovery_line(
            &pattern,
            &[Failure {
                process: p(9),
                resume_cap: 0,
            }],
        );
    }

    #[test]
    fn worklist_matches_naive_on_the_figures() {
        for pattern in [
            paper_figures::figure_1(),
            domino_pattern(4),
            domino_pattern(1),
        ] {
            let n = pattern.num_processes();
            assert_eq!(
                recovery_line(&pattern, &[]).as_slice(),
                recovery_line_naive(&pattern, &[]).as_slice()
            );
            for i in 0..n {
                let failures = [Failure {
                    process: p(i),
                    resume_cap: pattern.last_checkpoint_index(p(i)).saturating_sub(1),
                }];
                assert_eq!(
                    recovery_line(&pattern, &failures).as_slice(),
                    recovery_line_naive(&pattern, &failures).as_slice()
                );
            }
        }
    }

    #[test]
    fn at_last_checkpoint_helper() {
        let pattern = paper_figures::figure_1();
        let f = Failure::at_last_checkpoint(&pattern, p(2));
        assert_eq!(f.resume_cap, 3);
    }

    #[test]
    fn report_mean() {
        let report = RollbackReport {
            line: GlobalCheckpoint::new(vec![0, 0]),
            discarded_per_process: vec![2, 4],
            total_discarded: 6,
            rolled_to_initial: 2,
            lost_messages: 0,
        };
        assert!((report.mean_discarded() - 3.0).abs() < 1e-12);
    }
}
