//! The classic domino-effect pattern (Randell), as a reusable
//! construction.

use rdt_causality::ProcessId;
use rdt_rgraph::{Pattern, PatternBuilder};

/// Builds the staggered two-process ping-pong whose rollback cascades all
/// the way to the initial states — the **unbounded domino effect** the
/// paper's introduction cites as the reason uncoordinated checkpointing is
/// unusable (§1, reference \[9\]).
///
/// Per round `k` (0-based):
///
/// * `P_0`: `send(u_k)`, `deliver(v_k)`, checkpoint `C_{0,k+1}`;
/// * `P_1`: `deliver(u_k)`, checkpoint `C_{1,k+1}`, `send(v_k)`.
///
/// `P_1` checkpoints *between* its delivery and its send, so `v_k` is
/// sent after `C_{1,k+1}` but delivered before `C_{0,k+1}`: the only
/// consistent global checkpoints of the whole pattern are the initial one
/// and the final one, and **any** rollback below the final line unzips the
/// other process round by round, down to `{C_{0,0}, C_{1,0}}`.
///
/// With `R` rounds, `P_0` ends with checkpoints `0..=R` and `P_1` (whose
/// trailing send gets a closing checkpoint) with `0..=R+1`.
///
/// # Panics
///
/// Panics if `rounds == 0`.
///
/// # Example
///
/// ```rust
/// use rdt_recovery::{domino_pattern, recovery_line, Failure};
/// use rdt_causality::ProcessId;
///
/// let pattern = domino_pattern(8);
/// // P_0's most recent checkpoint is corrupted: resume from index 7.
/// let line = recovery_line(
///     &pattern,
///     &[Failure { process: ProcessId::new(0), resume_cap: 7 }],
/// );
/// assert_eq!(line.as_slice(), &[0, 0]);
/// ```
pub fn domino_pattern(rounds: usize) -> Pattern {
    assert!(rounds > 0, "at least one round");
    let p0 = ProcessId::new(0);
    let p1 = ProcessId::new(1);
    let mut b = PatternBuilder::new(2);
    for _ in 0..rounds {
        let u = b.send(p0, p1);
        b.deliver(u).expect("fresh message");
        b.checkpoint(p1);
        let v = b.send(p1, p0);
        b.deliver(v).expect("fresh message");
        b.checkpoint(p0);
    }
    b.close().build().expect("domino pattern is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{analyze, recovery_line, Failure};
    use rdt_rgraph::{consistency, GlobalCheckpoint, RdtChecker};

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn structure() {
        let pattern = domino_pattern(4);
        assert!(pattern.is_closed());
        assert_eq!(pattern.checkpoint_count(p(0)), 5); // C_{0,0..4}
        assert_eq!(pattern.checkpoint_count(p(1)), 6); // C_{1,0..5} (closing)
        assert_eq!(pattern.num_messages(), 8);
    }

    #[test]
    fn any_failure_collapses_to_initial() {
        let pattern = domino_pattern(6); // P0 last = 6, P1 last = 7
        for process in [p(0), p(1)] {
            for cap in [0u32, 2, 5] {
                let line = recovery_line(
                    &pattern,
                    &[Failure {
                        process,
                        resume_cap: cap,
                    }],
                );
                assert_eq!(line.as_slice(), &[0, 0], "cap {cap} on {process}");
            }
        }
        // Without any failure the final line stands.
        let line = recovery_line(&pattern, &[]);
        assert_eq!(line.as_slice(), &[6, 7]);
        // Losing just P1's closing checkpoint already cascades fully.
        let line = recovery_line(
            &pattern,
            &[Failure {
                process: p(1),
                resume_cap: 6,
            }],
        );
        assert_eq!(line.as_slice(), &[0, 0]);
    }

    #[test]
    fn only_extreme_global_checkpoints_are_consistent() {
        let pattern = domino_pattern(3); // P0: 0..=3, P1: 0..=4
        assert!(consistency::is_consistent(
            &pattern,
            &GlobalCheckpoint::new(vec![0, 0])
        ));
        assert!(consistency::is_consistent(
            &pattern,
            &GlobalCheckpoint::new(vec![3, 4])
        ));
        // Every intermediate line has an orphan.
        for a in 0..=3u32 {
            for b in 0..=4u32 {
                if (a, b) == (0, 0) || (a, b) == (3, 4) {
                    continue;
                }
                assert!(
                    !consistency::is_consistent(&pattern, &GlobalCheckpoint::new(vec![a, b])),
                    "({a},{b}) unexpectedly consistent"
                );
            }
        }
    }

    #[test]
    fn domino_pattern_violates_rdt() {
        assert!(!RdtChecker::new(&domino_pattern(3)).check().holds());
    }

    #[test]
    fn report_quantifies_the_cascade() {
        let pattern = domino_pattern(10);
        let report = analyze(
            &pattern,
            &[Failure {
                process: p(1),
                resume_cap: 9,
            }],
        );
        assert_eq!(report.rolled_to_initial, 2);
        // P0 discards 10 checkpoints, P1 discards 11 (it has the closing
        // one).
        assert_eq!(report.total_discarded, 21);
        assert!(report.mean_discarded() > 10.0);
    }
}
