//! Checkpoint garbage collection.
//!
//! Stable storage is the scarce resource of checkpointing systems: a
//! checkpoint may be discarded as soon as no future recovery can need it.
//! With single-failure recovery to the *latest* consistent line, the rule
//! is simple — everything strictly below the current recovery line is
//! obsolete — and the quality of a protocol shows in how close that line
//! tracks the computation's frontier.

use rdt_causality::{CheckpointId, ProcessId};
use rdt_rgraph::{GlobalCheckpoint, Pattern};

use crate::recovery_line;

/// The latest consistent global checkpoint of the pattern — the no-failure
/// recovery line. Rollbacks never go below it, so it is the garbage
/// collection frontier.
pub fn collection_frontier(pattern: &Pattern) -> GlobalCheckpoint {
    recovery_line(pattern, &[])
}

/// Checkpoints that can be discarded from stable storage: all checkpoints
/// strictly below the [`collection_frontier`].
///
/// (The frontier members themselves must be kept — they are the recovery
/// line — as must everything above them, which may become part of later
/// lines.)
pub fn obsolete_checkpoints(pattern: &Pattern) -> Vec<CheckpointId> {
    let frontier = collection_frontier(pattern);
    pattern
        .checkpoints()
        .filter(|c| c.index < frontier.get(c.process))
        .collect()
}

/// Storage summary: how much of the checkpoint history must be retained.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StorageReport {
    /// The garbage-collection frontier.
    pub frontier: GlobalCheckpoint,
    /// Total checkpoints taken (including the initial ones).
    pub total: usize,
    /// Checkpoints that may be discarded.
    pub obsolete: usize,
    /// Checkpoints that must stay on stable storage.
    pub live: usize,
}

impl StorageReport {
    /// Fraction of the history that can be discarded (`0.0` when nothing
    /// was taken beyond the initial checkpoints).
    pub fn reclaim_ratio(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.obsolete as f64 / self.total as f64
        }
    }
}

/// Computes the [`StorageReport`] of a pattern.
///
/// A protocol whose patterns keep the frontier near the end of the
/// computation (every RDT or ZCF protocol) reclaims almost everything; a
/// domino-prone pattern reclaims nothing.
///
/// # Example
///
/// ```rust
/// use rdt_recovery::{domino_pattern, gc};
///
/// // The domino pattern's only mid-run consistent line is the initial
/// // one... but its *final* line is consistent, so the frontier reaches
/// // the end and everything below it is reclaimable.
/// let report = gc::storage_report(&domino_pattern(5));
/// assert_eq!(report.live, 2);
/// ```
pub fn storage_report(pattern: &Pattern) -> StorageReport {
    let frontier = collection_frontier(pattern);
    let total = pattern.total_checkpoints();
    let obsolete: usize = (0..pattern.num_processes())
        .map(|i| frontier.get(ProcessId::new(i)) as usize)
        .sum();
    StorageReport {
        frontier,
        total,
        obsolete,
        live: total - obsolete,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domino_pattern;
    use rdt_rgraph::paper_figures;

    #[test]
    fn figure_1_frontier_is_final_line() {
        let pattern = paper_figures::figure_1();
        let report = storage_report(&pattern);
        assert_eq!(report.frontier.as_slice(), &[3, 3, 3]);
        assert_eq!(report.total, 12);
        assert_eq!(report.obsolete, 9);
        assert_eq!(report.live, 3);
        assert!((report.reclaim_ratio() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn obsolete_set_matches_frontier() {
        let pattern = paper_figures::figure_1();
        let obsolete = obsolete_checkpoints(&pattern);
        assert_eq!(obsolete.len(), 9);
        assert!(obsolete.iter().all(|c| c.index < 3));
    }

    #[test]
    fn domino_final_line_is_reachable_but_fragile() {
        // With the run *finished*, the final line is consistent and GC can
        // reclaim the whole staggered history. (The fragility is in
        // recovery, not storage: any failure collapses to the start —
        // which is exactly why the obsolete checkpoints must only be
        // discarded once the frontier members are safely on stable
        // storage.)
        let pattern = domino_pattern(6);
        let report = storage_report(&pattern);
        assert_eq!(report.live, 2);
        assert_eq!(report.frontier.as_slice(), &[6, 7]);
    }

    #[test]
    fn empty_pattern_keeps_initials() {
        let pattern = rdt_rgraph::PatternBuilder::new(3).build().unwrap();
        let report = storage_report(&pattern);
        assert_eq!(report.total, 3);
        assert_eq!(report.obsolete, 0);
        assert_eq!(report.live, 3);
    }
}
