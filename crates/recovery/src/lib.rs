//! Rollback-recovery on checkpoint and communication patterns.
//!
//! The motivating application of the paper (§1): after a failure, the
//! system must resume from a *consistent* global checkpoint. This crate
//! computes **recovery lines** (the latest consistent global checkpoint
//! respecting the failures' rollback caps), measures the **domino effect**
//! (how far an uncoordinated pattern can cascade), and classifies the
//! messages a recovery must re-handle.
//!
//! # Example
//!
//! ```rust
//! use rdt_causality::ProcessId;
//! use rdt_recovery::{analyze, domino_pattern, Failure};
//!
//! // The classic staggered ping-pong: rollback cascades to the start.
//! let pattern = domino_pattern(5);
//! // P_0 loses its most recent checkpoint and resumes from index 4.
//! let report = analyze(&pattern, &[Failure { process: ProcessId::new(0), resume_cap: 4 }]);
//! assert!(report.line.as_slice().iter().all(|&x| x == 0), "full domino collapse");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod domino;
pub mod gc;
mod line;
pub mod logging;

pub use domino::domino_pattern;
pub use line::{
    analyze, lost_messages, recovery_line, recovery_line_naive, try_analyze, try_lost_messages,
    try_recovery_line, Failure, RecoveryError, RollbackReport,
};
pub use logging::{output_commit_requirement, replay_plan, ReplayPlan};
