//! Property tests for recovery lines on randomly generated patterns.
//!
//! Four properties pin `recovery_line`:
//!
//! 1. **Consistency** — the line is a consistent global checkpoint that
//!    respects every failure's resume cap.
//! 2. **Componentwise maximality** — against a brute-force enumeration of
//!    *all* global checkpoints dominated by the caps, the line equals the
//!    componentwise maximum of the consistent ones (consistent cuts below
//!    fixed caps form a join-closed lattice, so that maximum is itself
//!    consistent).
//! 3. **Oracle agreement** — the worklist implementation matches the
//!    naive full-rescan fixpoint, `min_max::max_consistent_containing`,
//!    and the `IncrementalAnalysis` dominated descent.
//! 4. **Error reporting** — out-of-range failures surface as
//!    `RecoveryError`, never as a panic.

use proptest::prelude::*;
use rdt_causality::{CheckpointId, ProcessId};
use rdt_recovery::{recovery_line, recovery_line_naive, try_recovery_line, Failure, RecoveryError};
use rdt_rgraph::{
    consistency, min_max, GlobalCheckpoint, IncrementalAnalysis, Pattern, PatternBuilder,
    PatternMessageId,
};

/// Deterministic xorshift generator driving the pattern builder.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() as usize) % n
    }
}

/// Builds a random well-formed pattern, mirrored event-for-event into an
/// [`IncrementalAnalysis`] engine so property 3 can query both.
fn random_pattern(rng: &mut Rng, n: usize, events: usize) -> (Pattern, IncrementalAnalysis) {
    let mut builder = PatternBuilder::new(n);
    let mut incr = IncrementalAnalysis::new(n);
    let mut pending: Vec<(PatternMessageId, u32)> = Vec::new();
    for _ in 0..events {
        match rng.below(4) {
            0 => {
                let p = ProcessId::new(rng.below(n));
                builder.checkpoint(p);
                incr.append_checkpoint(p);
            }
            1 | 2 => {
                let from = rng.below(n);
                let to = (from + 1 + rng.below(n - 1)) % n;
                let (from, to) = (ProcessId::new(from), ProcessId::new(to));
                pending.push((builder.send(from, to), incr.append_send(from, to)));
            }
            _ => {
                if !pending.is_empty() {
                    let i = rng.below(pending.len());
                    let (pm, em) = pending.swap_remove(i);
                    builder.deliver(pm).expect("in-flight");
                    incr.append_deliver(em);
                }
            }
        }
    }
    if rng.next().is_multiple_of(2) {
        for (pm, em) in pending.drain(..) {
            builder.deliver(pm).expect("in-flight");
            incr.append_deliver(em);
        }
    }
    (builder.build().expect("well-formed"), incr)
}

/// Random failure set: 1..=n failures with caps at or below the last
/// checkpoints.
fn random_failures(rng: &mut Rng, pattern: &Pattern) -> Vec<Failure> {
    let n = pattern.num_processes();
    (0..rng.below(n) + 1)
        .map(|_| {
            let process = ProcessId::new(rng.below(n));
            let last = pattern.last_checkpoint_index(process);
            Failure {
                process,
                resume_cap: (rng.next() % (last as u64 + 1)) as u32,
            }
        })
        .collect()
}

/// The caps the line must respect: last checkpoints clamped by failures.
fn caps_of(pattern: &Pattern, failures: &[Failure]) -> Vec<u32> {
    let n = pattern.num_processes();
    let mut caps: Vec<u32> = (0..n)
        .map(|i| pattern.last_checkpoint_index(ProcessId::new(i)))
        .collect();
    for f in failures {
        let entry = &mut caps[f.process.index()];
        *entry = (*entry).min(f.resume_cap);
    }
    caps
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Properties 1 + 2: the line is consistent, capped, and equals the
    /// brute-force componentwise maximum of all consistent global
    /// checkpoints dominated by the caps.
    fn line_is_the_greatest_consistent_capped_checkpoint(
        seed in 1u64..1_000_000,
        n in 2usize..5,
        events in 4usize..20,
    ) {
        let mut rng = Rng(seed | 1);
        let (pattern, _) = random_pattern(&mut rng, n, events);
        let failures = random_failures(&mut rng, &pattern);
        let caps = caps_of(&pattern, &failures);
        let line = recovery_line(&pattern, &failures);

        prop_assert!(consistency::is_consistent(&pattern, &line));
        for (i, &cap) in caps.iter().enumerate() {
            prop_assert!(line.get(ProcessId::new(i)) <= cap, "cap violated at {i}");
        }

        // Brute force over the full grid below the caps.
        let mut best = vec![0u32; n];
        let mut idx = vec![0u32; n];
        loop {
            let gc = GlobalCheckpoint::new(idx.clone());
            if consistency::is_consistent(&pattern, &gc) {
                for (b, &v) in best.iter_mut().zip(&idx) {
                    *b = (*b).max(v);
                }
            }
            let mut k = 0;
            while k < n && idx[k] == caps[k] {
                idx[k] = 0;
                k += 1;
            }
            if k == n {
                break;
            }
            idx[k] += 1;
        }
        prop_assert_eq!(line.as_slice(), &best[..], "failures {:?}", failures);
    }

    /// Property 3: worklist ≡ naive rescan ≡ `min_max` ≡ incremental
    /// engine, on the same pattern and caps.
    fn line_agrees_with_all_oracles(
        seed in 1u64..1_000_000,
        n in 2usize..5,
        events in 4usize..28,
    ) {
        let mut rng = Rng(seed | 1);
        let (pattern, incr) = random_pattern(&mut rng, n, events);
        let failures = random_failures(&mut rng, &pattern);
        let caps = caps_of(&pattern, &failures);
        let line = recovery_line(&pattern, &failures);

        prop_assert_eq!(&line, &recovery_line_naive(&pattern, &failures), "naive");
        prop_assert_eq!(&line, &incr.max_consistent_dominated(&caps), "engine");

        // With no failures the line is the greatest consistent global
        // checkpoint, which `min_max` computes with an empty member set.
        let uncapped = recovery_line(&pattern, &[]);
        let batch = min_max::max_consistent_containing(&pattern, &[] as &[CheckpointId])
            .expect("vacuously exact");
        prop_assert_eq!(&uncapped, &batch, "min_max");

        // With a single failure whose cap the line sits exactly on, the
        // caps of the two computations coincide, so `min_max`'s exact
        // membership query must reproduce the line.
        if let [f] = &failures[..] {
            if line.get(f.process) == f.resume_cap {
                let member = [CheckpointId::new(f.process, f.resume_cap)];
                prop_assert_eq!(
                    Some(line.clone()),
                    min_max::max_consistent_containing(&pattern, &member),
                    "exact membership at {:?}", f
                );
            }
        }
    }

    /// Property 4: malformed failure specs are reported, not panicked.
    fn out_of_range_failures_are_errors(
        seed in 1u64..1_000_000,
        n in 2usize..5,
        events in 4usize..16,
        beyond in 0usize..4,
    ) {
        let mut rng = Rng(seed | 1);
        let (pattern, _) = random_pattern(&mut rng, n, events);
        let bad = Failure { process: ProcessId::new(n + beyond), resume_cap: 0 };
        prop_assert_eq!(
            try_recovery_line(&pattern, &[bad]),
            Err(RecoveryError::ProcessOutOfRange { process: n + beyond, num_processes: n })
        );
    }
}
