//! Token trees and the lightweight AST the rules run on.
//!
//! Stage two and three of the pipeline: the flat token stream from
//! [`crate::lex`] is nested by delimiter into token *trees*, then parsed
//! into a deliberately small AST — items (functions, impls, mods,
//! structs) and, inside function bodies, *scopes* (brace blocks tagged
//! with the control header that introduced them) and *statements*
//! (`let` bindings with their initialiser span, expression statements,
//! nested items). Expressions themselves stay flat token ranges: every
//! group's tokens are contiguous in the flat stream, so a `(lo, hi)`
//! token-index range plus the scope tree is enough for the analyses the
//! rules need:
//!
//! * **guard chains** — the conditions dominating a token position
//!   (enclosing `if`/`while` conditions, `else` negations, `for` range
//!   binders, earlier `assert!`/`debug_assert!` statements, and earlier
//!   early-exit `if cond { return/continue/break }` statements with the
//!   condition negated);
//! * **local dataflow** — resolving an identifier at a position to the
//!   initialiser of the nearest dominating `let`, or to a function
//!   parameter.
//!
//! No macro expansion: the workspace is macro-light by construction, and
//! macro *invocations* are still lexed, so rules see their argument
//! tokens. The parser is total — any token soup yields an AST without
//! panicking (pinned by a proptest in the fixtures corpus test).

use crate::lex::{TokKind, Token};

/// A token index range `[lo, hi)` into the flat token vector.
pub type TokRange = (usize, usize);

/// One node of the token tree: a leaf token index or a delimited group.
#[derive(Debug, Clone)]
pub enum Tree {
    /// Index of a non-delimiter token.
    Leaf(usize),
    /// A `(…)`, `[…]` or `{…}` group.
    Group {
        /// Opening delimiter byte: `(`, `[` or `{`.
        delim: u8,
        /// Token index of the opening delimiter.
        open: usize,
        /// Token index one past the closing delimiter (== `open + 1 +
        /// children tokens + 1` when balanced; tokens of the group are
        /// flat-contiguous in `[open, close)`).
        close: usize,
        /// Nested trees between the delimiters.
        children: Vec<Tree>,
    },
}

impl Tree {
    /// Flat token range covered by this tree.
    pub fn range(&self) -> TokRange {
        match *self {
            Tree::Leaf(i) => (i, i + 1),
            Tree::Group { open, close, .. } => (open, close),
        }
    }
}

fn close_of(delim: u8) -> u8 {
    match delim {
        b'(' => b')',
        b'[' => b']',
        _ => b'}',
    }
}

/// Builds token trees from the flat stream. Unbalanced input never
/// panics: a stray closer is kept as a leaf, an unclosed group runs to
/// the end of input.
pub fn build_trees(src: &str, tokens: &[Token]) -> Vec<Tree> {
    fn build(src: &str, tokens: &[Token], i: &mut usize, until: Option<u8>) -> Vec<Tree> {
        let mut out = Vec::new();
        while *i < tokens.len() {
            let tok = &tokens[*i];
            let text = tok.text(src);
            if tok.kind == TokKind::Punct {
                let b = text.as_bytes().first().copied().unwrap_or(0);
                if matches!(b, b'(' | b'[' | b'{') {
                    let open = *i;
                    *i += 1;
                    let children = build(src, tokens, i, Some(close_of(b)));
                    out.push(Tree::Group {
                        delim: b,
                        open,
                        close: *i,
                        children,
                    });
                    continue;
                }
                if matches!(b, b')' | b']' | b'}') {
                    if until == Some(b) {
                        *i += 1; // consume the closer for the caller
                        return out;
                    }
                    // Stray closer: drop it so parsing continues.
                    *i += 1;
                    continue;
                }
            }
            out.push(Tree::Leaf(*i));
            *i += 1;
        }
        out
    }
    let mut i = 0;
    build(src, tokens, &mut i, None)
}

/// What introduced a scope (brace block) inside a function body.
#[derive(Debug, Clone)]
pub enum ScopeKind {
    /// `if cond { … }` then-branch.
    IfThen {
        /// Token range of the condition.
        cond: TokRange,
    },
    /// `else { … }` (or the final `else` of an `else if` chain);
    /// `cond` is the condition of the matching `if`, which is *false*
    /// inside this scope.
    Else {
        /// Token range of the matching `if` condition.
        cond: Option<TokRange>,
    },
    /// `while cond { … }`.
    While {
        /// Token range of the condition.
        cond: TokRange,
    },
    /// `for binders in iter { … }`.
    For {
        /// Names bound by the loop pattern.
        binders: Vec<String>,
        /// Token range of the iterated expression.
        iter: TokRange,
    },
    /// Any other brace block: `loop`, `match` bodies, bare blocks,
    /// struct literals, closure bodies. No guard information.
    Plain,
}

/// A parsed brace block: its kind plus statements, in order.
#[derive(Debug, Clone)]
pub struct Scope {
    /// What introduced the scope.
    pub kind: ScopeKind,
    /// Flat token range of the block (including the braces).
    pub range: TokRange,
    /// The statements, in source order.
    pub stmts: Vec<Stmt>,
}

/// A nested scope inside a statement, in source order.
#[derive(Debug, Clone)]
pub struct Stmt {
    /// Flat token range of the whole statement.
    pub range: TokRange,
    /// Statement form.
    pub kind: StmtKind,
    /// Scopes nested anywhere in this statement (control-structure
    /// bodies, bare blocks), in source order.
    pub subs: Vec<Scope>,
}

/// Statement forms the rules distinguish.
#[derive(Debug, Clone)]
pub enum StmtKind {
    /// `let names = init;`
    Let {
        /// Names bound by the pattern (flattened; `mut`/`ref` stripped).
        names: Vec<String>,
        /// Token range of the initialiser (after `=`), when present.
        init: Option<TokRange>,
    },
    /// Anything else at statement position.
    Expr,
    /// A nested item (fn, struct, …) — parsed into [`Item`].
    Item(Box<Item>),
}

/// A top-level or nested item.
#[derive(Debug, Clone)]
pub struct Item {
    /// Item form.
    pub kind: ItemKind,
    /// Whether a `#[cfg(test)]` attribute gates this item (rules skip
    /// the whole subtree).
    pub cfg_test: bool,
    /// Flat token range of the item, attributes included.
    pub range: TokRange,
}

/// Item forms.
#[derive(Debug, Clone)]
pub enum ItemKind {
    /// A function with its parsed body.
    Fn(FnItem),
    /// `mod name { items }` (inline only; `mod name;` is `Other`).
    Mod {
        /// Module name.
        name: String,
        /// Items inside the module.
        items: Vec<Item>,
    },
    /// `impl [Trait for] SelfTy { items }`.
    Impl {
        /// Rendered self type (e.g. `ExecutorState`).
        self_ty: String,
        /// Trait name when this is a trait impl.
        trait_name: Option<String>,
        /// Associated items.
        items: Vec<Item>,
    },
    /// Anything else (structs, enums, uses, consts, traits are parsed
    /// as `Other` unless they carry bodies the rules need).
    Other,
}

/// A function item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// Parameter binder names (`self` included when present).
    pub params: Vec<String>,
    /// Parsed body; `None` for trait method declarations.
    pub body: Option<Scope>,
    /// Token index of the `fn` keyword (for spans).
    pub fn_tok: usize,
    /// Whether any attribute on the fn is `#[test]`.
    pub is_test: bool,
}

/// A parsed source file: flat tokens plus the item tree.
pub struct SourceFile {
    /// The source text.
    pub src: String,
    /// Flat tokens.
    pub tokens: Vec<Token>,
    /// Top-level items.
    pub items: Vec<Item>,
}

impl SourceFile {
    /// Lexes and parses `src`.
    pub fn parse(src: &str) -> SourceFile {
        let tokens = crate::lex::lex(src);
        let trees = build_trees(src, &tokens);
        let items = parse_items(src, &tokens, &trees);
        SourceFile {
            src: src.to_string(),
            tokens,
            items,
        }
    }

    /// Text of token `i` (empty when out of range).
    pub fn text(&self, i: usize) -> &str {
        self.tokens.get(i).map_or("", |t| t.text(&self.src))
    }

    /// Renders a token range with single spaces (for messages).
    pub fn render(&self, range: TokRange) -> String {
        let mut out = String::new();
        for i in range.0..range.1.min(self.tokens.len()) {
            if !out.is_empty() {
                out.push(' ');
            }
            out.push_str(self.text(i));
        }
        out
    }

    /// 1-based (line, col) of token `i`.
    pub fn line_col(&self, i: usize) -> (u32, u32) {
        self.tokens.get(i).map_or((1, 1), |t| (t.line, t.col))
    }

    /// Every non-test function in the file, with its impl context,
    /// depth-first.
    pub fn functions(&self) -> Vec<FnRef<'_>> {
        let mut out = Vec::new();
        collect_fns(&self.items, None, false, &mut out);
        out
    }
}

/// A function together with its enclosing impl's self type.
pub struct FnRef<'a> {
    /// The function item.
    pub f: &'a FnItem,
    /// Enclosing `impl` self type, when inside one.
    pub self_ty: Option<&'a str>,
    /// Whether the fn (or an enclosing item) is `#[cfg(test)]`/`#[test]`.
    pub in_test: bool,
}

fn collect_fns<'a>(
    items: &'a [Item],
    self_ty: Option<&'a str>,
    in_test: bool,
    out: &mut Vec<FnRef<'a>>,
) {
    for item in items {
        let test = in_test || item.cfg_test;
        match &item.kind {
            ItemKind::Fn(f) => {
                out.push(FnRef {
                    f,
                    self_ty,
                    in_test: test || f.is_test,
                });
                // Nested fns inside the body.
                if let Some(body) = &f.body {
                    collect_scope_fns(body, self_ty, test || f.is_test, out);
                }
            }
            ItemKind::Mod { items, .. } => collect_fns(items, self_ty, test, out),
            ItemKind::Impl {
                self_ty: ty, items, ..
            } => collect_fns(items, Some(ty.as_str()), test, out),
            ItemKind::Other => {}
        }
    }
}

fn collect_scope_fns<'a>(
    scope: &'a Scope,
    self_ty: Option<&'a str>,
    in_test: bool,
    out: &mut Vec<FnRef<'a>>,
) {
    for stmt in &scope.stmts {
        if let StmtKind::Item(item) = &stmt.kind {
            collect_fns(std::slice::from_ref(item), self_ty, in_test, out);
        }
        for sub in &stmt.subs {
            collect_scope_fns(sub, self_ty, in_test, out);
        }
    }
}

// ---------------------------------------------------------------------
// Item parsing
// ---------------------------------------------------------------------

/// Whether the attribute tokens in `range` spell `cfg(test)`.
fn attr_is_cfg_test(src: &str, tokens: &[Token], children: &[Tree]) -> bool {
    // children are the trees inside the `[...]` attribute group:
    // `cfg ( test )` possibly with more.
    let mut saw_cfg = false;
    for tree in children {
        match tree {
            Tree::Leaf(i) if tokens[*i].is_ident(src, "cfg") => saw_cfg = true,
            Tree::Group {
                delim: b'(',
                children,
                ..
            } if saw_cfg => {
                return children.iter().any(|t| match t {
                    Tree::Leaf(i) => tokens[*i].is_ident(src, "test"),
                    _ => false,
                });
            }
            _ => {}
        }
    }
    false
}

struct ItemParser<'s> {
    src: &'s str,
    tokens: &'s [Token],
}

impl<'s> ItemParser<'s> {
    fn leaf_text(&self, tree: &Tree) -> Option<&'s str> {
        match tree {
            Tree::Leaf(i) => Some(self.tokens[*i].text(self.src)),
            Tree::Group { .. } => None,
        }
    }

    /// Parses a sibling list of trees into items.
    fn items(&self, trees: &[Tree]) -> Vec<Item> {
        let mut out = Vec::new();
        let mut i = 0;
        while i < trees.len() {
            let item_start = trees[i].range().0;
            let mut cfg_test = false;
            let mut is_test = false;
            // Attributes: `#` `[ … ]` (possibly several).
            while i + 1 < trees.len() && self.leaf_text(&trees[i]) == Some("#") {
                if let Tree::Group {
                    delim: b'[',
                    children,
                    ..
                } = &trees[i + 1]
                {
                    if attr_is_cfg_test(self.src, self.tokens, children) {
                        cfg_test = true;
                    }
                    let rendered: Vec<_> =
                        children.iter().filter_map(|t| self.leaf_text(t)).collect();
                    if rendered == ["test"] {
                        is_test = true;
                    }
                    i += 2;
                } else {
                    break;
                }
            }
            let Some((item, consumed)) = self.item_at(trees, i, is_test) else {
                i += 1;
                continue;
            };
            let item_end = if consumed > 0 && consumed <= trees.len() {
                trees[consumed - 1].range().1
            } else {
                trees[i.min(trees.len() - 1)].range().1
            };
            out.push(Item {
                kind: item,
                cfg_test,
                range: (item_start, item_end),
            });
            i = consumed;
        }
        out
    }

    /// Tries to parse one item starting at `trees[i]`; returns the item
    /// kind and the index just past it.
    fn item_at(&self, trees: &[Tree], mut i: usize, is_test: bool) -> Option<(ItemKind, usize)> {
        // Skip visibility and qualifiers. A trailing attribute can leave
        // `i` at (or past) the end — every access must stay checked.
        while matches!(
            self.leaf_text(trees.get(i)?),
            Some("pub" | "const" | "async" | "unsafe" | "extern" | "default")
        ) {
            // `pub ( crate )` — skip the paren group too.
            if self.leaf_text(&trees[i]) == Some("pub")
                && matches!(trees.get(i + 1), Some(Tree::Group { delim: b'(', .. }))
            {
                i += 1;
            }
            i += 1;
        }
        match self.leaf_text(trees.get(i)?) {
            Some("fn") => {
                let (f, next) = self.fn_item(trees, i, is_test)?;
                Some((ItemKind::Fn(f), next))
            }
            Some("mod") => {
                let name = self.leaf_text(trees.get(i + 1)?)?.to_string();
                match trees.get(i + 2) {
                    Some(Tree::Group {
                        delim: b'{',
                        children,
                        ..
                    }) => Some((
                        ItemKind::Mod {
                            name,
                            items: self.items(children),
                        },
                        i + 3,
                    )),
                    _ => Some((ItemKind::Other, i + 2)),
                }
            }
            Some("impl") => {
                // impl [<…>] Ty { … } | impl Trait for Ty { … }
                let mut j = i + 1;
                let mut names: Vec<String> = Vec::new();
                let mut trait_name = None;
                let mut depth = 0i32; // generics <…> depth
                while j < trees.len() {
                    match &trees[j] {
                        Tree::Group {
                            delim: b'{',
                            children,
                            ..
                        } => {
                            let self_ty = names.last().cloned().unwrap_or_default();
                            return Some((
                                ItemKind::Impl {
                                    self_ty,
                                    trait_name,
                                    items: self.items(children),
                                },
                                j + 1,
                            ));
                        }
                        tree => {
                            if let Some(text) = self.leaf_text(tree) {
                                match text {
                                    "<" => depth += 1,
                                    ">" => depth -= 1,
                                    "for" if depth == 0 => {
                                        trait_name = names.last().cloned();
                                        names.clear();
                                    }
                                    "where" if depth == 0 => {}
                                    _ if depth == 0
                                        && text
                                            .chars()
                                            .next()
                                            .is_some_and(|c| c.is_alphabetic() || c == '_') =>
                                    {
                                        names.push(text.to_string())
                                    }
                                    _ => {}
                                }
                            }
                            j += 1;
                        }
                    }
                }
                Some((ItemKind::Other, j))
            }
            Some("struct" | "enum" | "trait" | "union") => {
                let is_trait = self.leaf_text(&trees[i]) == Some("trait");
                // Skip to the body or terminating `;`.
                let mut j = i + 1;
                while j < trees.len() {
                    match &trees[j] {
                        Tree::Group {
                            delim: b'{',
                            children,
                            ..
                        } => {
                            if is_trait {
                                // Default method bodies live here.
                                let name = self
                                    .leaf_text(trees.get(i + 1).unwrap_or(&trees[i]))
                                    .unwrap_or("")
                                    .to_string();
                                return Some((
                                    ItemKind::Impl {
                                        self_ty: name,
                                        trait_name: None,
                                        items: self.items(children),
                                    },
                                    j + 1,
                                ));
                            }
                            return Some((ItemKind::Other, j + 1));
                        }
                        tree if self.leaf_text(tree) == Some(";") => {
                            return Some((ItemKind::Other, j + 1))
                        }
                        _ => j += 1,
                    }
                }
                Some((ItemKind::Other, j))
            }
            Some("use" | "mod;" | "static" | "type" | "macro_rules") | Some(_) => {
                // Consume to the next top-level `;` or brace group.
                let mut j = i;
                while j < trees.len() {
                    match &trees[j] {
                        Tree::Group { delim: b'{', .. } => return Some((ItemKind::Other, j + 1)),
                        tree if self.leaf_text(tree) == Some(";") => {
                            return Some((ItemKind::Other, j + 1))
                        }
                        _ => j += 1,
                    }
                }
                Some((ItemKind::Other, j))
            }
            None => Some((ItemKind::Other, i + 1)),
        }
    }

    /// Parses `fn name (params) [-> ty] { body }` starting at the `fn`
    /// leaf.
    fn fn_item(&self, trees: &[Tree], i: usize, is_test: bool) -> Option<(FnItem, usize)> {
        let fn_tok = match &trees[i] {
            Tree::Leaf(t) => *t,
            Tree::Group { .. } => return None,
        };
        let name = self.leaf_text(trees.get(i + 1)?)?.to_string();
        let mut j = i + 2;
        let mut params = Vec::new();
        // Skip generics, find the parameter parens.
        while j < trees.len() {
            match &trees[j] {
                Tree::Group {
                    delim: b'(',
                    children,
                    ..
                } => {
                    params = self.param_names(children);
                    j += 1;
                    break;
                }
                Tree::Group { delim: b'{', .. } => return None, // no params: not a fn
                _ => j += 1,
            }
        }
        // Skip the return type / where clause to the body.
        while j < trees.len() {
            match &trees[j] {
                Tree::Group {
                    delim: b'{',
                    children,
                    open,
                    close,
                } => {
                    let body = parse_scope(
                        self.src,
                        self.tokens,
                        children,
                        ScopeKind::Plain,
                        (*open, *close),
                    );
                    return Some((
                        FnItem {
                            name,
                            params,
                            body: Some(body),
                            fn_tok,
                            is_test,
                        },
                        j + 1,
                    ));
                }
                tree if self.leaf_text(tree) == Some(";") => {
                    return Some((
                        FnItem {
                            name,
                            params,
                            body: None,
                            fn_tok,
                            is_test,
                        },
                        j + 1,
                    ));
                }
                _ => j += 1,
            }
        }
        Some((
            FnItem {
                name,
                params,
                body: None,
                fn_tok,
                is_test,
            },
            j,
        ))
    }

    /// Binder names from a parameter list: idents directly before a
    /// top-level `:`, plus bare `self`.
    fn param_names(&self, children: &[Tree]) -> Vec<String> {
        let mut out = Vec::new();
        let mut prev: Option<&str> = None;
        let mut depth = 0i32;
        for tree in children {
            match self.leaf_text(tree) {
                Some("<") => depth += 1,
                Some(">") => depth -= 1,
                Some(":") if depth == 0 => {
                    if let Some(name) = prev {
                        if name != "mut" && name != "ref" {
                            out.push(name.to_string());
                        }
                    }
                    prev = None;
                }
                Some("self") => {
                    out.push("self".to_string());
                    prev = Some("self");
                }
                Some(text) => prev = Some(text),
                None => prev = None,
            }
        }
        out
    }
}

/// Parses top-level trees into items.
pub fn parse_items(src: &str, tokens: &[Token], trees: &[Tree]) -> Vec<Item> {
    ItemParser { src, tokens }.items(trees)
}

// ---------------------------------------------------------------------
// Scope / statement parsing
// ---------------------------------------------------------------------

/// Keywords that open a control construct with a brace body.
fn is_block_keyword(text: &str) -> bool {
    matches!(text, "if" | "while" | "for" | "match" | "loop" | "unsafe")
}

fn parse_scope(
    src: &str,
    tokens: &[Token],
    children: &[Tree],
    kind: ScopeKind,
    range: TokRange,
) -> Scope {
    let parser = ItemParser { src, tokens };
    let mut stmts = Vec::new();
    let mut i = 0;
    while i < children.len() {
        let start_range = children[i].range();
        // Nested items.
        if let Some(text) = parser.leaf_text(&children[i]) {
            if matches!(text, "fn" | "struct" | "impl" | "mod" | "trait" | "enum")
                // `struct` in expr position doesn't exist; `match x {}`
                // handled below, so this is safe.
                && !matches!(kind, ScopeKind::Plain if false)
            {
                if let Some((item_kind, next)) = parser.item_at(children, i, false) {
                    let end = if next > 0 && next <= children.len() {
                        children[next - 1].range().1
                    } else {
                        start_range.1
                    };
                    stmts.push(Stmt {
                        range: (start_range.0, end),
                        kind: StmtKind::Item(Box::new(Item {
                            kind: item_kind,
                            cfg_test: false,
                            range: (start_range.0, end),
                        })),
                        subs: Vec::new(),
                    });
                    i = next;
                    continue;
                }
            }
        }
        // `let` statement.
        if parser.leaf_text(&children[i]) == Some("let") {
            let stmt_start = i;
            let mut j = i + 1;
            let mut eq_at = None;
            let mut depth = 0i32;
            while j < children.len() {
                match parser.leaf_text(&children[j]) {
                    Some(";") => break,
                    Some("<") => depth += 1,
                    Some(">") => depth -= 1,
                    Some("=") if depth <= 0 && eq_at.is_none() => {
                        // `=` but not `==`/`=>`/`<=` … single Punct
                        // tokens, so `==` is two adjacent `=` leaves;
                        // treat the first standalone `=` as the binder.
                        let next_is_eq = parser
                            .leaf_text(children.get(j + 1).unwrap_or(&children[j]))
                            == Some("=")
                            && j + 1 < children.len();
                        let prev_text = if j > 0 {
                            parser.leaf_text(&children[j - 1])
                        } else {
                            None
                        };
                        if !next_is_eq
                            && !matches!(prev_text, Some("!" | "<" | ">" | "=" | "+" | "-"))
                        {
                            eq_at = Some(j);
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            let stmt_end_tree = j.min(children.len().saturating_sub(1));
            let end = children
                .get(j)
                .map_or_else(|| children[stmt_end_tree].range().1, |t| t.range().1);
            // Pattern names: idents between `let` and (`:` or `=`).
            let mut names = Vec::new();
            let name_end = eq_at.unwrap_or(j);
            let mut colon_seen = false;
            for tree in &children[i + 1..name_end.min(children.len())] {
                match parser.leaf_text(tree) {
                    Some(":") => colon_seen = true,
                    Some(text)
                        if !colon_seen
                            && text
                                .chars()
                                .next()
                                .is_some_and(|c| c.is_alphabetic() || c == '_')
                            && !matches!(text, "mut" | "ref" | "Some" | "Ok" | "Err") =>
                    {
                        names.push(text.to_string());
                    }
                    _ => {
                        if let Tree::Group {
                            children: inner, ..
                        } = tree
                        {
                            if !colon_seen {
                                // Tuple / struct patterns: take idents.
                                for t in inner {
                                    if let Some(text) = parser.leaf_text(t) {
                                        if text
                                            .chars()
                                            .next()
                                            .is_some_and(|c| c.is_alphabetic() || c == '_')
                                            && !matches!(text, "mut" | "ref")
                                        {
                                            names.push(text.to_string());
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
            let init = eq_at.map(|eq| {
                let lo = children[eq + 1..j]
                    .first()
                    .map_or(children[eq].range().1, |t| t.range().0);
                let hi = children[eq + 1..j].last().map_or(lo, |t| t.range().1);
                (lo, hi)
            });
            let subs = collect_subs(src, tokens, &children[stmt_start..j.min(children.len())]);
            stmts.push(Stmt {
                range: (start_range.0, end),
                kind: StmtKind::Let { names, init },
                subs,
            });
            i = (j + 1).min(children.len());
            continue;
        }
        // Control construct or expression statement: consume to the
        // statement boundary — a top-level `;`, or the end of a
        // control construct's block chain.
        let stmt_start = i;
        let mut j = i;
        let mut saw_block_chain = false;
        while j < children.len() {
            if parser.leaf_text(&children[j]) == Some(";") {
                j += 1;
                break;
            }
            if let Some(text) = parser.leaf_text(&children[j]) {
                if is_block_keyword(text) && j == stmt_start {
                    // Control construct at statement start: consume its
                    // header, block, and any else-chain, then stop.
                    j = skip_construct(&parser, children, j);
                    saw_block_chain = true;
                    break;
                }
            }
            if let Tree::Group { delim: b'{', .. } = &children[j] {
                // A block ends an expression statement when it is the
                // statement itself (bare block) — otherwise (struct
                // literal, closure body mid-expression) keep going; we
                // approximate by stopping only when the next tree does
                // not continue an expression.
                let continues = matches!(
                    children.get(j + 1).and_then(|t| parser.leaf_text(t)),
                    Some("." | "?" | ";" | "else")
                );
                if !continues && j == stmt_start {
                    j += 1;
                    saw_block_chain = true;
                    break;
                }
            }
            j += 1;
        }
        if j == stmt_start {
            j = stmt_start + 1;
        }
        let _ = saw_block_chain;
        let end = children[(j - 1).min(children.len() - 1)].range().1;
        let subs = collect_subs(src, tokens, &children[stmt_start..j.min(children.len())]);
        stmts.push(Stmt {
            range: (start_range.0, end),
            kind: StmtKind::Expr,
            subs,
        });
        i = j;
    }
    Scope { kind, range, stmts }
}

/// Consumes one control construct starting at `children[i]` (an
/// `if`/`while`/`for`/`match`/`loop`/`unsafe` keyword): header trees,
/// body group, and any `else`/`else if` chain. Returns the index past
/// it.
fn skip_construct(parser: &ItemParser<'_>, children: &[Tree], i: usize) -> usize {
    let mut j = i + 1;
    // Header up to the first top-level brace group.
    while j < children.len() {
        if let Tree::Group { delim: b'{', .. } = &children[j] {
            j += 1;
            break;
        }
        j += 1;
    }
    // else / else if chains.
    while parser.leaf_text(children.get(j).unwrap_or(&children[0])) == Some("else")
        && j < children.len()
    {
        j += 1;
        if parser.leaf_text(children.get(j).unwrap_or(&children[0])) == Some("if") {
            j += 1;
        }
        while j < children.len() {
            if let Tree::Group { delim: b'{', .. } = &children[j] {
                j += 1;
                break;
            }
            j += 1;
        }
    }
    j
}

/// Finds every brace group nested in `trees` and parses it into a
/// [`Scope`], attaching the control header that introduced it. Walks
/// paren/bracket groups too (conditions with nested closures etc.).
fn collect_subs(src: &str, tokens: &[Token], trees: &[Tree]) -> Vec<Scope> {
    let parser = ItemParser { src, tokens };
    let mut out = Vec::new();
    let mut pending_if_cond: Option<TokRange> = None;
    let mut i = 0;
    while i < trees.len() {
        match &trees[i] {
            Tree::Leaf(t) => {
                let text = tokens[*t].text(src);
                match text {
                    "if" | "while" => {
                        // Condition runs to the first top-level brace.
                        let is_if = text == "if";
                        let mut j = i + 1;
                        // `else if` shares the pending slot.
                        while j < trees.len() {
                            if let Tree::Group { delim: b'{', .. } = &trees[j] {
                                break;
                            }
                            j += 1;
                        }
                        let cond = if j > i + 1 {
                            (trees[i + 1].range().0, trees[j - 1].range().1)
                        } else {
                            (trees[i].range().1, trees[i].range().1)
                        };
                        if let Some(Tree::Group {
                            children,
                            open,
                            close,
                            ..
                        }) = trees.get(j)
                        {
                            let kind = if is_if {
                                ScopeKind::IfThen { cond }
                            } else {
                                ScopeKind::While { cond }
                            };
                            out.push(parse_scope(src, tokens, children, kind, (*open, *close)));
                            pending_if_cond = is_if.then_some(cond);
                            i = j + 1;
                            continue;
                        }
                        i = j;
                    }
                    "else" => {
                        let cond = pending_if_cond;
                        // `else if …` is handled by the `if` arm on the
                        // next iteration (its own cond); a bare `else {`
                        // gets the negated condition.
                        if let Some(Tree::Group {
                            children,
                            open,
                            close,
                            ..
                        }) = trees.get(i + 1)
                        {
                            out.push(parse_scope(
                                src,
                                tokens,
                                children,
                                ScopeKind::Else { cond },
                                (*open, *close),
                            ));
                            pending_if_cond = None;
                            i += 2;
                            continue;
                        }
                        i += 1;
                    }
                    "for" => {
                        // for BINDERS in ITER { … }
                        let mut in_at = None;
                        let mut j = i + 1;
                        while j < trees.len() {
                            if let Tree::Group { delim: b'{', .. } = &trees[j] {
                                break;
                            }
                            if parser.leaf_text(&trees[j]) == Some("in") && in_at.is_none() {
                                in_at = Some(j);
                            }
                            j += 1;
                        }
                        let mut binders = Vec::new();
                        if let Some(in_at) = in_at {
                            for tree in &trees[i + 1..in_at] {
                                match tree {
                                    Tree::Leaf(t) => {
                                        let text = tokens[*t].text(src);
                                        if text
                                            .chars()
                                            .next()
                                            .is_some_and(|c| c.is_alphabetic() || c == '_')
                                            && !matches!(text, "mut" | "ref")
                                        {
                                            binders.push(text.to_string());
                                        }
                                    }
                                    Tree::Group { children, .. } => {
                                        for t in children {
                                            if let Tree::Leaf(t) = t {
                                                let text = tokens[*t].text(src);
                                                if text
                                                    .chars()
                                                    .next()
                                                    .is_some_and(|c| c.is_alphabetic() || c == '_')
                                                    && !matches!(text, "mut" | "ref")
                                                {
                                                    binders.push(text.to_string());
                                                }
                                            }
                                        }
                                    }
                                }
                            }
                        }
                        let iter = match in_at {
                            Some(in_at) if j > in_at + 1 => {
                                (trees[in_at + 1].range().0, trees[j - 1].range().1)
                            }
                            _ => (trees[i].range().1, trees[i].range().1),
                        };
                        if let Some(Tree::Group {
                            children,
                            open,
                            close,
                            ..
                        }) = trees.get(j)
                        {
                            out.push(parse_scope(
                                src,
                                tokens,
                                children,
                                ScopeKind::For { binders, iter },
                                (*open, *close),
                            ));
                            i = j + 1;
                            continue;
                        }
                        i = j;
                    }
                    _ => i += 1,
                }
            }
            Tree::Group {
                delim,
                children,
                open,
                close,
            } => {
                if *delim == b'{' {
                    out.push(parse_scope(
                        src,
                        tokens,
                        children,
                        ScopeKind::Plain,
                        (*open, *close),
                    ));
                } else {
                    // Parens/brackets can hide closures with brace
                    // bodies; recurse for their scopes.
                    out.extend(collect_subs(src, tokens, children));
                }
                i += 1;
            }
        }
    }
    out
}

// ---------------------------------------------------------------------
// Guard chains and local dataflow
// ---------------------------------------------------------------------

/// One guard dominating a position.
#[derive(Debug, Clone)]
pub enum Guard {
    /// This condition is *true* at the position.
    True(TokRange),
    /// This condition is *false* at the position (else branch, or an
    /// earlier `if cond { return/continue/break; }`).
    False(TokRange),
    /// The position is inside `for binders in iter { … }`.
    ForBinder {
        /// Loop pattern names.
        binders: Vec<String>,
        /// The iterated expression.
        iter: TokRange,
    },
    /// An earlier `assert!(…)`/`debug_assert!(…)` in the block chain;
    /// the range covers the asserted condition (first macro argument).
    Assert(TokRange),
}

/// Collects the guards dominating flat token position `pos` within a
/// function body.
pub fn guard_chain(file: &SourceFile, body: &Scope, pos: usize) -> Vec<Guard> {
    let mut out = Vec::new();
    descend(file, body, pos, &mut out);
    out
}

fn descend(file: &SourceFile, scope: &Scope, pos: usize, out: &mut Vec<Guard>) {
    for (idx, stmt) in scope.stmts.iter().enumerate() {
        if pos >= stmt.range.0 && pos < stmt.range.1 {
            // Earlier sibling statements contribute asserts and
            // early-exit guards.
            for prior in &scope.stmts[..idx] {
                if let Some(range) = assert_cond(file, prior) {
                    out.push(Guard::Assert(range));
                }
                if let Some(cond) = early_exit_cond(file, prior) {
                    out.push(Guard::False(cond));
                }
            }
            for sub in &stmt.subs {
                if pos >= sub.range.0 && pos < sub.range.1 {
                    match &sub.kind {
                        ScopeKind::IfThen { cond } => out.push(Guard::True(*cond)),
                        ScopeKind::Else { cond: Some(cond) } => out.push(Guard::False(*cond)),
                        ScopeKind::Else { cond: None } => {}
                        ScopeKind::While { cond } => out.push(Guard::True(*cond)),
                        ScopeKind::For { binders, iter } => out.push(Guard::ForBinder {
                            binders: binders.clone(),
                            iter: *iter,
                        }),
                        ScopeKind::Plain => {}
                    }
                    descend(file, sub, pos, out);
                    return;
                }
            }
            return; // in the stmt's own tokens (cond, init, …)
        }
    }
}

/// When `stmt` is `assert!(cond, …)` / `debug_assert!(cond, …)` /
/// `assert_ne!(a, b)`-style, the token range of the condition (first
/// argument, up to a top-level `,` — for `assert_ne`/`assert_eq` the
/// whole argument list).
fn assert_cond(file: &SourceFile, stmt: &Stmt) -> Option<TokRange> {
    let (lo, hi) = stmt.range;
    let first = file.text(lo);
    if !matches!(
        first,
        "assert"
            | "debug_assert"
            | "assert_ne"
            | "debug_assert_ne"
            | "assert_eq"
            | "debug_assert_eq"
    ) {
        return None;
    }
    if file.text(lo + 1) != "!" {
        return None;
    }
    // Tokens of the argument group: `( … )` at lo+2.
    if !matches!(file.text(lo + 2), "(" | "[" | "{") {
        return None;
    }
    let args_lo = lo + 3;
    // First top-level argument: scan to `,` at depth 0 or the closing
    // delimiter.
    let mut depth = 0i32;
    let mut j = args_lo;
    while j < hi {
        match file.text(j) {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                if depth == 0 {
                    break;
                }
                depth -= 1;
            }
            "," if depth == 0 => break,
            _ => {}
        }
        j += 1;
    }
    if matches!(
        first,
        "assert_ne" | "debug_assert_ne" | "assert_eq" | "debug_assert_eq"
    ) {
        // Keep both arguments: `assert_ne!(x, 0)` is a guard on x.
        let mut end = args_lo;
        let mut depth = 0i32;
        while end < hi {
            match file.text(end) {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                }
                _ => {}
            }
            end += 1;
        }
        return Some((args_lo, end));
    }
    Some((args_lo, j))
}

/// When `stmt` is `if cond { …; return/continue/break …; }` with no
/// `else`, the condition (false after the statement).
fn early_exit_cond(file: &SourceFile, stmt: &Stmt) -> Option<TokRange> {
    if file.text(stmt.range.0) != "if" {
        return None;
    }
    let sub = stmt.subs.first()?;
    let ScopeKind::IfThen { cond } = sub.kind else {
        return None;
    };
    // No else branch.
    if stmt
        .subs
        .iter()
        .any(|s| matches!(s.kind, ScopeKind::Else { .. }))
    {
        return None;
    }
    // The block must end in an exit.
    let exits = sub.stmts.last().is_some_and(|last| {
        (last.range.0..last.range.1)
            .any(|i| matches!(file.text(i), "return" | "continue" | "break"))
    }) || sub.stmts.iter().all(|s| {
        (s.range.0..s.range.1).any(|i| matches!(file.text(i), "return" | "continue" | "break"))
    });
    exits.then_some(cond)
}

/// Resolves `name` at `pos` to the initialiser range of the nearest
/// dominating `let`, searching the scope chain.
pub fn resolve_let(scope: &Scope, pos: usize, name: &str) -> Option<TokRange> {
    let mut found = None;
    resolve_in(scope, pos, name, &mut found);
    found
}

fn resolve_in(scope: &Scope, pos: usize, name: &str, found: &mut Option<TokRange>) {
    for stmt in &scope.stmts {
        if stmt.range.0 >= pos {
            break;
        }
        if let StmtKind::Let { names, init } = &stmt.kind {
            if names.iter().any(|n| n == name) {
                if let Some(init) = init {
                    if pos >= stmt.range.1 || pos > init.1 {
                        *found = Some(*init);
                    }
                }
            }
        }
        for sub in &stmt.subs {
            if pos >= sub.range.0 && pos < sub.range.1 {
                resolve_in(sub, pos, name, found);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> SourceFile {
        SourceFile::parse(src)
    }

    fn first_fn(file: &SourceFile) -> &FnItem {
        fn find(items: &[Item]) -> Option<&FnItem> {
            for item in items {
                match &item.kind {
                    ItemKind::Fn(f) => return Some(f),
                    ItemKind::Mod { items, .. } | ItemKind::Impl { items, .. } => {
                        if let Some(f) = find(items) {
                            return Some(f);
                        }
                    }
                    ItemKind::Other => {}
                }
            }
            None
        }
        find(&file.items).expect("a fn")
    }

    #[test]
    fn parses_fn_with_params_and_body() {
        let file = parse("pub fn f(a: u32, mut b: usize) -> u32 { let c = a + 1; c }");
        let f = first_fn(&file);
        assert_eq!(f.name, "f");
        assert_eq!(f.params, vec!["a", "b"]);
        let body = f.body.as_ref().unwrap();
        assert_eq!(body.stmts.len(), 2);
        assert!(matches!(&body.stmts[0].kind, StmtKind::Let { names, .. } if names == &["c"]));
    }

    #[test]
    fn impl_blocks_carry_self_type() {
        let file =
            parse("impl<T> Foo<T> { fn g(&self) {} } impl Drop for Bar { fn drop(&mut self) {} }");
        let fns = file.functions();
        assert_eq!(fns.len(), 2);
        assert_eq!(fns[0].self_ty, Some("Foo"));
        assert_eq!(fns[1].self_ty, Some("Bar"));
        assert_eq!(fns[1].f.name, "drop");
    }

    #[test]
    fn cfg_test_items_are_marked() {
        let file = parse("#[cfg(test)] mod tests { fn helper() { x.unwrap(); } } fn live() {}");
        let fns = file.functions();
        let helper = fns.iter().find(|f| f.f.name == "helper").unwrap();
        assert!(helper.in_test);
        let live = fns.iter().find(|f| f.f.name == "live").unwrap();
        assert!(!live.in_test);
    }

    #[test]
    fn guard_chain_sees_if_else_and_early_exit() {
        let src = "fn f(x: u32) -> u32 {\n\
                   if x == 0 { return 0; }\n\
                   if x > 10 { x - 1 } else { x + 1 }\n\
                   }";
        let file = parse(src);
        let f = first_fn(&file);
        let body = f.body.as_ref().unwrap();
        // Position of the `-` in `x - 1` (the first `-` is in `->`).
        let minus = file
            .tokens
            .iter()
            .rposition(|t| t.text(&file.src) == "-")
            .unwrap();
        let guards = guard_chain(&file, body, minus);
        assert!(
            guards.iter().any(|g| matches!(g, Guard::False(_))),
            "early exit recorded: {guards:?}"
        );
        assert!(
            guards
                .iter()
                .any(|g| matches!(g, Guard::True(c) if file.render(*c).contains('>'))),
            "if condition recorded: {guards:?}"
        );
    }

    #[test]
    fn else_branch_negates_the_condition() {
        let src = "fn f(x: u32) -> u32 { if x > 0 { 1 } else { x + 7 } }";
        let file = parse(src);
        let f = first_fn(&file);
        let body = f.body.as_ref().unwrap();
        let seven = file
            .tokens
            .iter()
            .position(|t| t.text(&file.src) == "7")
            .unwrap();
        let guards = guard_chain(&file, body, seven);
        assert!(
            guards
                .iter()
                .any(|g| matches!(g, Guard::False(c) if file.render(*c) == "x > 0")),
            "{guards:?}"
        );
    }

    #[test]
    fn for_binders_and_assert_guards() {
        let src =
            "fn f(v: &[u32]) { debug_assert!(v.len() > 0); for i in 0..v.len() { let _ = v[i]; } }";
        let file = parse(src);
        let f = first_fn(&file);
        let body = f.body.as_ref().unwrap();
        let idx = file
            .tokens
            .iter()
            .rposition(|t| t.text(&file.src) == "i")
            .unwrap();
        let guards = guard_chain(&file, body, idx);
        assert!(
            guards.iter().any(|g| matches!(g, Guard::Assert(_))),
            "{guards:?}"
        );
        assert!(
            guards
                .iter()
                .any(|g| matches!(g, Guard::ForBinder { binders, .. } if binders.contains(&"i".to_string()))),
            "{guards:?}"
        );
    }

    #[test]
    fn let_resolution_walks_the_scope_chain() {
        let src = "fn f(cfg: &Cfg) { let seed = cfg.seed; { let rng = SimRng::seed(seed); } }";
        let file = parse(src);
        let f = first_fn(&file);
        let body = f.body.as_ref().unwrap();
        // Resolve `seed` at its use inside SimRng::seed(…).
        let use_at = file
            .tokens
            .iter()
            .rposition(|t| t.text(&file.src) == "seed")
            .unwrap();
        let init = resolve_let(body, use_at, "seed").expect("resolved");
        assert_eq!(file.render(init), "cfg . seed");
    }

    #[test]
    fn parser_is_total_on_unbalanced_garbage() {
        for src in ["fn f( {", "}}}", "impl {{{", "let = = =", "fn", "match {"] {
            let _ = SourceFile::parse(src);
        }
    }
}
