//! The rule catalog and the per-file analyses.
//!
//! Every rule here runs on the parsed [`SourceFile`] from
//! [`crate::syntax`] — token sequences with spans, function bodies with
//! scope structure, guard chains, and `let` dataflow — instead of the
//! byte-substring matching of the original lexical linter. The six
//! legacy rules keep their IDs and semantics; four syntax-aware rules
//! join them:
//!
//! * `index-underflow` — unguarded `expr - <const>` on index/interval
//!   expressions (guard dominance over the block chain),
//! * `seed-provenance` — RNG seed arguments must trace to
//!   `derive_seed`/config fields through `let`s and params,
//! * `panic-reachability` — whole-workspace call-graph search from the
//!   protocol entry points to panic sites (in [`crate::graph`]),
//! * `arena-slot-escape` — executor arena offsets/borrows stored into
//!   values that outlive the round.

use crate::syntax::{
    guard_chain, resolve_let, FnRef, Guard, Item, ItemKind, Scope, SourceFile, StmtKind, TokRange,
};
use crate::Diagnostic;

/// One catalog entry: id, one-line summary, and the long `--explain`
/// text.
pub struct RuleInfo {
    /// Stable rule id (used in diagnostics and `lint.allow`).
    pub id: &'static str,
    /// One-line summary for `--rules` and diagnostics.
    pub summary: &'static str,
    /// Multi-line explanation for `--explain <id>`.
    pub explain: &'static str,
}

/// The full rule catalog, in documentation order.
pub const CATALOG: &[RuleInfo] = &[
    RuleInfo {
        id: "hash-collections",
        summary: "hash-ordered collection in a deterministic result path; \
                  use BTreeMap/BTreeSet or a Vec",
        explain: "Result paths (crates/core, sim, bench, rgraph, verify) must \
produce bit-identical output for any thread count and platform. HashMap and \
HashSet iterate in randomized order, so any fold over them is \
nondeterministic. Use BTreeMap/BTreeSet, or a Vec indexed by the dense \
process/checkpoint ids the workspace already assigns.",
    },
    RuleInfo {
        id: "wall-clock",
        summary: "host clock read outside the metrics layer; route timing \
                  through rdt_sim::Stopwatch in a metrics.rs",
        explain: "Reading Instant or SystemTime anywhere but a designated \
metrics.rs (or the criterion shim) lets wall-clock time leak into results, \
breaking replayability. Timing belongs behind rdt_sim::Stopwatch inside a \
metrics layer, where the golden-fixture scrubber already knows to erase it.",
    },
    RuleInfo {
        id: "protocol-unwrap",
        summary: "unwrap/expect in protocol or certifier state-machine \
                  code; propagate an error instead",
        explain: "A panic inside a protocol state machine or the certifier \
aborts an entire sweep or replay, losing every in-flight result. Return a \
Result and let the caller decide. This rule is the lexical ancestor of \
panic-reachability, kept for exact file-scoped coverage of crates/core, \
crates/verify and the rgraph replay shim.",
    },
    RuleInfo {
        id: "batch-in-loop",
        summary: "batch analysis constructor in per-event simulator or \
                  certifier code; maintain one rdt_rgraph::IncrementalAnalysis \
                  and append events instead",
        explain: "Constructing PatternAnalysis/RdtChecker/ZigzagReachability \
inside per-event code rebuilds closures from scratch at every step — the \
exact O(n²) collapse PR 4 removed. Keep one IncrementalAnalysis alive and \
append. The bench crate is exempt: comparing batch against incremental is \
its job.",
    },
    RuleInfo {
        id: "sweep-seed",
        summary: "ad-hoc RNG seeding in sweep code; derive per-point seeds \
                  with SimRng::derive_seed",
        explain: "Sweep results are only reproducible if every grid point's \
seed is a pure function of the sweep's base seed and the point's index. \
SimRng::seed(<anything ad hoc>) in crates/bench breaks that contract; use \
SimRng::derive_seed(base, point_index). seed-provenance generalizes this \
check to dataflow; this rule keeps the hard bench-crate ban.",
    },
    RuleInfo {
        id: "alloc-in-step",
        summary: "heap allocation in an executor send/arrival step; write \
                  piggybacks into the recycled scratch arena instead",
        explain: "before_send and on_message_arrival are the zero-allocation \
hot path: BENCH-SIM-THROUGHPUT gates on allocation counts. Vec::new, \
.to_vec and .clone in those bodies allocate per message. Write into the \
recycled piggyback arena (ExecutorState slabs) instead.",
    },
    RuleInfo {
        id: "index-underflow",
        summary: "unguarded `- <const>` on an index/interval expression; \
                  guard with a positivity check or use checked_sub",
        explain: "Interval indices are 1-based (interval k sits between \
checkpoints k-1 and k), so `x.index - 1`, `x.interval - 1` and `*_iv - 1` \
underflow at the first interval — the exact PR 5 recovery-line bug. The \
rule flags subtraction of a constant from an index-shaped expression \
(.index / .interval fields, idents ending in _iv, loop variables over \
0-based ranges) unless a dominating guard proves positivity: an enclosing \
`if x > 0`-style condition, the negation of an `== 0` early exit, an \
assert!/debug_assert! on the value, or a loop range that starts above \
zero. checked_sub/saturating_sub/clamp never match the pattern and are \
always fine.",
    },
    RuleInfo {
        id: "seed-provenance",
        summary: "RNG seed does not trace to derive_seed or a config \
                  field; literals and entropy sources are forbidden",
        explain: "Every RNG in crates/sim, crates/bench and src must be \
seeded from the experiment configuration: SimRng::derive_seed(base, point) \
or a SimConfig field. The rule follows each seed argument \
(SimRng::seed / seed_from_u64 / from_seed) backwards through let-bindings \
and function parameters; an integer literal or an entropy source \
(thread_rng, SystemTime, ...) anywhere in that dataflow is a finding. \
Opaque values (params, struct fields) are trusted — their call sites are \
checked where the value is born.",
    },
    RuleInfo {
        id: "panic-reachability",
        summary: "panic site reachable from a protocol entry point; \
                  return an error or guard the site",
        explain: "A whole-workspace call graph (name resolution over the \
crate set, over-approximate on trait and method calls) is searched from \
the protocol entry points — ExecutorCell::before_send / \
on_message_arrival, the certifier replay functions, and the fallible \
recovery-line API — to any panic!/unreachable!/todo!/unwrap/expect, or a \
slice index whose index expression contains an unguarded subtraction \
(the underflow-to-out-of-bounds route). Each finding reports one \
call path. Strictly wider than protocol-unwrap: it crosses crate \
boundaries and includes panicking macros and underflow-prone indexing.",
    },
    RuleInfo {
        id: "arena-slot-escape",
        summary: "executor arena slot or row borrow stored beyond the \
                  round; copy the data out instead",
        explain: "PackedPiggyback slots and arena row borrows are only \
valid for the round that produced them — slots are recycled. Storing a \
.slot offset or an &-borrow of an arena row (pb_tdv / pb_bits / rows) \
into a struct literal or a collection (push/insert/extend) lets it \
outlive the round and alias a recycled slot. Constructing the \
PackedPiggyback itself is the sanctioned escape. Copy the packed data \
out (e.g. into an owned Vec via the cold path) if it must survive.",
    },
];

/// `(id, summary)` pairs for `rdt-lint --rules` and the docs test.
pub fn rule_catalog() -> Vec<(&'static str, &'static str)> {
    CATALOG.iter().map(|r| (r.id, r.summary)).collect()
}

/// The `--explain` text for `id`, when the rule exists.
pub fn explain(id: &str) -> Option<&'static str> {
    CATALOG.iter().find(|r| r.id == id).map(|r| r.explain)
}

// ---------------------------------------------------------------------
// Path scopes
// ---------------------------------------------------------------------

/// Deterministic *result path* sources: protocol state machines,
/// simulator, theory checkers, certifier, experiment harness.
pub fn in_result_path(path: &str) -> bool {
    [
        "crates/core/src/",
        "crates/sim/src/",
        "crates/bench/src/",
        "crates/rgraph/src/",
        "crates/verify/src/",
    ]
    .iter()
    .any(|prefix| path.starts_with(prefix))
}

/// Files that may *not* read the host clock (everything in a src tree
/// except the designated metrics layers and the criterion shim).
pub fn wall_clock_scope(path: &str) -> bool {
    let in_src =
        path.starts_with("src/") || (path.starts_with("crates/") && path.contains("/src/"));
    // The lint CLI itself reports wall time (the `elapsed_ns` report
    // field backing the CI time budget) — measurement, not simulation
    // logic, so it is exempt like metrics.rs and the criterion shim.
    in_src
        && !path.ends_with("/metrics.rs")
        && !path.starts_with("crates/criterion-shim/")
        && !path.starts_with("crates/lint/")
}

/// Protocol / certifier state-machine code, where a panic kills a replay.
pub fn protocol_scope(path: &str) -> bool {
    path.starts_with("crates/core/src/")
        || path.starts_with("crates/verify/src/")
        || path == "crates/rgraph/src/replay.rs"
}

/// Per-event simulator / certifier code (batch constructors banned).
pub fn per_event_scope(path: &str) -> bool {
    path.starts_with("crates/sim/src/") || path.starts_with("crates/verify/src/")
}

/// The zero-allocation send/arrival hot path.
pub fn hot_step_scope(path: &str) -> bool {
    path == "crates/core/src/executor.rs" || path.starts_with("crates/sim/src/")
}

/// Production source in an analysis-bearing crate: everything under a
/// `src/` tree except the in-workspace tool shims.
pub fn analysis_scope(path: &str) -> bool {
    let in_src =
        path.starts_with("src/") || (path.starts_with("crates/") && path.contains("/src/"));
    in_src
        && !path.starts_with("crates/criterion-shim/")
        && !path.starts_with("crates/ptest/")
        && !path.starts_with("crates/json/")
        && !path.starts_with("crates/lint/")
}

/// Where RNGs are constructed: simulator, sweeps, and the binary crate.
pub fn seed_scope(path: &str) -> bool {
    (path.starts_with("crates/sim/src/")
        || path.starts_with("crates/bench/src/")
        || path.starts_with("src/"))
        && path != "crates/sim/src/rng.rs" // SimRng's own definition
}

// ---------------------------------------------------------------------
// Parsed file + token helpers
// ---------------------------------------------------------------------

/// A source file parsed once, shared by every rule.
pub struct ParsedFile {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// The parsed file.
    pub file: SourceFile,
    /// Flat token ranges of `#[cfg(test)]` items and `#[test]` fns.
    test_ranges: Vec<TokRange>,
}

impl ParsedFile {
    /// Parses `src` under workspace-relative `path`.
    pub fn parse(path: &str, src: &str) -> ParsedFile {
        let file = SourceFile::parse(src);
        let mut test_ranges = Vec::new();
        collect_test_ranges(&file.items, false, &mut test_ranges);
        ParsedFile {
            path: path.to_string(),
            file,
            test_ranges,
        }
    }

    /// Whether token `i` lies inside test-gated code.
    pub fn in_test(&self, i: usize) -> bool {
        self.test_ranges.iter().any(|&(lo, hi)| i >= lo && i < hi)
    }

    /// The trimmed source line of token `i`.
    pub fn snippet(&self, i: usize) -> String {
        let (line, _) = self.file.line_col(i);
        self.file
            .src
            .lines()
            .nth(line as usize - 1)
            .map_or(String::new(), |l| l.trim().to_string())
    }

    /// Builds a diagnostic anchored at token `i`.
    pub fn diag(&self, rule: &'static str, i: usize, note: String) -> Diagnostic {
        let (line, col) = self.file.line_col(i);
        Diagnostic {
            rule,
            path: self.path.clone(),
            line: line as usize,
            col: col as usize,
            snippet: self.snippet(i),
            note,
        }
    }
}

fn collect_test_ranges(items: &[Item], parent_test: bool, out: &mut Vec<TokRange>) {
    for item in items {
        let test = parent_test || item.cfg_test;
        match &item.kind {
            ItemKind::Fn(f) => {
                if test || f.is_test {
                    out.push(item.range);
                }
            }
            ItemKind::Mod { items, .. } | ItemKind::Impl { items, .. } => {
                if test {
                    out.push(item.range);
                }
                collect_test_ranges(items, test, out);
            }
            ItemKind::Other => {
                if test {
                    out.push(item.range);
                }
            }
        }
    }
}

/// Whether tokens starting at `i` spell exactly `pats`.
fn seq(file: &SourceFile, i: usize, pats: &[&str]) -> bool {
    pats.iter().enumerate().all(|(k, p)| file.text(i + k) == *p)
}

/// Token index of the close matching the open delimiter at `open`
/// (returns `file.tokens.len()` when unbalanced).
fn matching_close(file: &SourceFile, open: usize) -> usize {
    let mut depth = 0i64;
    let mut i = open;
    while i < file.tokens.len() {
        match file.text(i) {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
        i += 1;
    }
    file.tokens.len()
}

fn is_ident_start(text: &str) -> bool {
    text.chars()
        .next()
        .is_some_and(|c| c.is_alphabetic() || c == '_')
}

/// Whether `needle` occurs as a token subsequence anywhere in `range`.
fn range_has_seq(file: &SourceFile, range: TokRange, needle: &[&str]) -> bool {
    (range.0..range.1.saturating_sub(needle.len().saturating_sub(1))).any(|i| seq(file, i, needle))
}

/// Whether any token in `range` has text `t`.
fn range_has(file: &SourceFile, range: TokRange, t: &str) -> bool {
    (range.0..range.1).any(|i| file.text(i) == t)
}

// ---------------------------------------------------------------------
// Per-file rule driver
// ---------------------------------------------------------------------

/// Runs every per-file rule on `pf` (panic-reachability, which needs
/// the whole workspace, lives in [`crate::graph`]).
pub fn check_file(pf: &ParsedFile, diags: &mut Vec<Diagnostic>) {
    let path = pf.path.as_str();
    if in_result_path(path) {
        ident_rule(pf, "hash-collections", &["HashMap", "HashSet"], diags);
    }
    if wall_clock_scope(path) {
        ident_rule(pf, "wall-clock", &["Instant", "SystemTime"], diags);
    }
    if protocol_scope(path) {
        seq_rule(pf, "protocol-unwrap", &[".", "unwrap", "("], diags);
        seq_rule(pf, "protocol-unwrap", &[".", "expect", "("], diags);
    }
    if per_event_scope(path) {
        for ty in ["PatternAnalysis", "RdtChecker", "ZigzagReachability"] {
            seq_rule(pf, "batch-in-loop", &[ty, ":", ":", "new", "("], diags);
        }
    }
    if path.starts_with("crates/bench/") {
        seq_rule(pf, "sweep-seed", &["SimRng", ":", ":", "seed", "("], diags);
    }
    if hot_step_scope(path) {
        alloc_in_step(pf, diags);
    }
    if analysis_scope(path) {
        index_underflow(pf, diags);
    }
    if seed_scope(path) {
        seed_provenance(pf, diags);
    }
    if path == "crates/core/src/executor.rs" || path.starts_with("crates/sim/src/") {
        arena_slot_escape(pf, diags);
    }
}

/// Flags standalone identifier tokens outside test code.
fn ident_rule(pf: &ParsedFile, rule: &'static str, idents: &[&str], diags: &mut Vec<Diagnostic>) {
    for (i, tok) in pf.file.tokens.iter().enumerate() {
        let text = tok.text(&pf.file.src);
        if idents.contains(&text) && !pf.in_test(i) {
            diags.push(pf.diag(rule, i, String::new()));
        }
    }
}

/// Flags token sequences outside test code.
fn seq_rule(pf: &ParsedFile, rule: &'static str, pats: &[&str], diags: &mut Vec<Diagnostic>) {
    for i in 0..pf.file.tokens.len() {
        if seq(&pf.file, i, pats) && !pf.in_test(i) {
            diags.push(pf.diag(rule, i, String::new()));
        }
    }
}

/// `alloc-in-step`: allocation token sequences inside the bodies of
/// `before_send` / `on_message_arrival` only.
fn alloc_in_step(pf: &ParsedFile, diags: &mut Vec<Diagnostic>) {
    for fr in pf.file.functions() {
        if fr.in_test || !matches!(fr.f.name.as_str(), "before_send" | "on_message_arrival") {
            continue;
        }
        let Some(body) = &fr.f.body else { continue };
        for i in body.range.0..body.range.1 {
            if seq(&pf.file, i, &["Vec", ":", ":", "new", "("])
                || seq(&pf.file, i, &[".", "to_vec", "("])
                || seq(&pf.file, i, &[".", "clone", "("])
            {
                diags.push(pf.diag("alloc-in-step", i, String::new()));
            }
        }
    }
}

// ---------------------------------------------------------------------
// index-underflow
// ---------------------------------------------------------------------

/// The index-shaped subject of a `- <const>`, for guard matching.
enum Subject {
    /// `base.field - c` where field is `index`/`interval`.
    Field { base: String, field: String },
    /// `name - c` where `name` ends in `_iv` or is a loop binder.
    Ident(String),
}

/// Whether the subtraction at token `minus` (already known to be
/// `subject - <int>`) is dominated by a positivity guard.
fn underflow_guarded(pf: &ParsedFile, body: &Scope, minus: usize, subject: &Subject) -> bool {
    let file = &pf.file;
    let mentions = |range: TokRange| -> bool {
        match subject {
            Subject::Field { base, field } => {
                range_has_seq(file, range, &[base, ".", field])
                    // `self.index` guards often restate just the field
                    // through an accessor; accept a bare field mention.
                    || (base == "self" && range_has(file, range, field))
            }
            Subject::Ident(name) => range_has(file, range, name),
        }
    };
    // `>=`/`>`/`!=` as token runs: `>` or `!` followed by `=` or a bare
    // `>`; lower-bound proofs from negated conditions use `==`/`<`/`<=`.
    let positive_cmp =
        |range: TokRange| range_has(file, range, ">") || range_has_seq(file, range, &["!", "="]);
    let negative_cmp =
        |range: TokRange| range_has_seq(file, range, &["=", "="]) || range_has(file, range, "<");
    for guard in guard_chain(file, body, minus) {
        match guard {
            Guard::True(cond) | Guard::Assert(cond) => {
                if mentions(cond) && positive_cmp(cond) {
                    return true;
                }
            }
            Guard::False(cond) => {
                if mentions(cond) && (negative_cmp(cond) || positive_cmp(cond)) {
                    // `if x == 0 { continue }` → x != 0 here; `if x < 1
                    // { return }` → x >= 1 here. A negated `!=`/`>` is
                    // accepted too (e.g. inverted sentinel checks).
                    return true;
                }
            }
            Guard::ForBinder { binders, iter } => {
                if let Subject::Ident(name) = subject {
                    if binders.iter().any(|b| b == name) {
                        // Bound by the loop range: guarded unless the
                        // range starts at literal 0.
                        let starts_at_zero = file.text(iter.0) == "0";
                        if !starts_at_zero {
                            return true;
                        }
                    }
                }
            }
        }
    }
    false
}

/// Whether token `i` sits inside an `assert!`-family invocation (the
/// assertion *is* the guard; flagging its own arithmetic is noise).
fn inside_assert(pf: &ParsedFile, i: usize) -> bool {
    let file = &pf.file;
    let mut j = i;
    let mut steps = 0;
    while j > 0 && steps < 48 {
        j -= 1;
        steps += 1;
        match file.text(j) {
            ";" | "{" | "}" => return false,
            "assert" | "debug_assert" | "assert_eq" | "debug_assert_eq" | "assert_ne"
            | "debug_assert_ne" => return file.text(j + 1) == "!",
            _ => {}
        }
    }
    false
}

/// `index-underflow`: `expr - <int const>` on an index/interval-shaped
/// expression without a dominating positivity guard.
fn index_underflow(pf: &ParsedFile, diags: &mut Vec<Diagnostic>) {
    let file = &pf.file;
    for fr in pf.file.functions() {
        if fr.in_test {
            continue;
        }
        let Some(body) = &fr.f.body else { continue };
        for i in body.range.0..body.range.1 {
            if file.text(i) != "-" {
                continue;
            }
            let next = file.tokens.get(i + 1);
            let is_int = next.is_some_and(|t| t.kind == crate::lex::TokKind::Int);
            if !is_int || pf.in_test(i) {
                continue;
            }
            // Identify the subject immediately before the `-`.
            let subject = if i >= 3
                && file.text(i - 2) == "."
                && matches!(file.text(i - 1), "index" | "interval")
                && is_ident_start(file.text(i - 3))
            {
                Subject::Field {
                    base: file.text(i - 3).to_string(),
                    field: file.text(i - 1).to_string(),
                }
            } else if i >= 1 && is_ident_start(file.text(i - 1)) && file.text(i - 2) != "." {
                let name = file.text(i - 1).to_string();
                let is_loop_var = guard_chain(file, body, i).iter().any(
                    |g| matches!(g, Guard::ForBinder { binders, .. } if binders.contains(&name)),
                );
                if name.ends_with("_iv") || is_loop_var {
                    Subject::Ident(name)
                } else {
                    continue;
                }
            } else {
                continue;
            };
            if inside_assert(pf, i) || underflow_guarded(pf, body, i, &subject) {
                continue;
            }
            let what = match &subject {
                Subject::Field { base, field } => format!("{base}.{field}"),
                Subject::Ident(name) => name.clone(),
            };
            diags.push(pf.diag(
                "index-underflow",
                i,
                format!("`{what}` may be 0 here; 1-based interval indices underflow"),
            ));
        }
    }
}

// ---------------------------------------------------------------------
// seed-provenance
// ---------------------------------------------------------------------

const ENTROPY: &[&str] = &[
    "thread_rng",
    "entropy",
    "getrandom",
    "random",
    "SystemTime",
    "Instant",
    "now",
];

/// Checks one seed-argument token range; returns the offending token
/// and reason when provenance fails.
fn seed_violation(
    pf: &ParsedFile,
    fr: &FnRef<'_>,
    body: &Scope,
    range: TokRange,
    depth: usize,
) -> Option<(usize, String)> {
    let file = &pf.file;
    // Anything routed through derive_seed is sanctioned wholesale.
    if range_has(file, range, "derive_seed") {
        return None;
    }
    let mut j = range.0;
    while j < range.1 {
        let text = file.text(j);
        let kind = file.tokens.get(j).map(|t| t.kind);
        if kind == Some(crate::lex::TokKind::Int) {
            return Some((j, format!("literal seed `{text}`")));
        }
        if ENTROPY.contains(&text) {
            return Some((j, format!("entropy source `{text}`")));
        }
        if is_ident_start(text)
            && file.text(j + 1) != "("
            && file.text(j + 1) != ":"
            && file.text(j.wrapping_sub(1)) != "."
            && file.text(j.wrapping_sub(1)) != ":"
        {
            // A plain local: params are trusted (their call sites are
            // checked where the value originates); lets are followed.
            if !fr.f.params.iter().any(|p| p == text) && depth < 6 {
                if let Some(init) = resolve_let(body, j, text) {
                    if let Some(v) = seed_violation(pf, fr, body, init, depth + 1) {
                        return Some(v);
                    }
                }
            }
        }
        j += 1;
    }
    None
}

/// `seed-provenance`: every RNG seed argument must trace to
/// `derive_seed` or an opaque config value, never a literal or entropy.
fn seed_provenance(pf: &ParsedFile, diags: &mut Vec<Diagnostic>) {
    let file = &pf.file;
    for fr in pf.file.functions() {
        if fr.in_test || fr.self_ty == Some("SimRng") {
            continue;
        }
        let Some(body) = &fr.f.body else { continue };
        for i in body.range.0..body.range.1 {
            let call_open = if seq(file, i, &["SimRng", ":", ":", "seed", "("]) {
                Some(i + 4)
            } else if (file.text(i) == "seed_from_u64" || file.text(i) == "from_seed")
                && file.text(i + 1) == "("
            {
                Some(i + 1)
            } else {
                None
            };
            let Some(open) = call_open else { continue };
            if pf.in_test(i) {
                continue;
            }
            let close = matching_close(file, open);
            if let Some((tok, reason)) = seed_violation(pf, &fr, body, (open + 1, close), 0) {
                let _ = tok;
                diags.push(pf.diag(
                    "seed-provenance",
                    i,
                    format!("{reason}; derive seeds with SimRng::derive_seed or a config field"),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------
// arena-slot-escape
// ---------------------------------------------------------------------

/// Whether the token at `i` spells an arena source: a `.slot` offset
/// read or an `&`-borrow of an arena row.
fn arena_source_at(file: &SourceFile, i: usize) -> bool {
    // `.slot` field read (not a method call).
    if file.text(i) == "." && file.text(i + 1) == "slot" && file.text(i + 2) != "(" {
        return true;
    }
    // `&` borrow whose immediate chain names an arena slab.
    if file.text(i) == "&" {
        for k in i + 1..(i + 6).min(file.tokens.len()) {
            let t = file.text(k);
            if t == "pb_tdv" || t == "pb_bits" || t == "arena" || t == "rows" {
                return true;
            }
            if matches!(t, ";" | "," | ")" | "(" | "[") {
                break;
            }
        }
    }
    false
}

/// Walks outward from token `i` looking for a storing context: a
/// struct literal (`Name { … }`, capitalized, not `PackedPiggyback`)
/// or a collection insertion (`.push(…)`, `.insert(…)`, `.extend(…)`).
fn store_context(file: &SourceFile, i: usize, lo: usize) -> Option<String> {
    let mut paren = 0i64;
    let mut brace = 0i64;
    let mut bracket = 0i64;
    let mut j = i;
    while j > lo {
        j -= 1;
        match file.text(j) {
            ")" => paren += 1,
            "]" => bracket += 1,
            "}" => brace += 1,
            "(" => {
                if paren > 0 {
                    paren -= 1;
                    continue;
                }
                // Unmatched `(` — a call whose arguments hold `i`.
                if file.text(j.wrapping_sub(2)) == "."
                    && matches!(file.text(j.wrapping_sub(1)), "push" | "insert" | "extend")
                {
                    // Pushing a slot back onto the free list *ends* its
                    // life — that is the recycler, not an escape.
                    if file.text(j.wrapping_sub(3)) == "free" {
                        return None;
                    }
                    return Some(format!("stored via .{}(..)", file.text(j.wrapping_sub(1))));
                }
            }
            "[" if bracket > 0 => bracket -= 1,
            "{" => {
                if brace > 0 {
                    brace -= 1;
                    continue;
                }
                // Unmatched `{` — struct literal when a capitalized
                // ident precedes (conditions cannot hold bare struct
                // literals, so `if x {` never matches this shape).
                let name = file.text(j.wrapping_sub(1));
                if name.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
                    if name == "PackedPiggyback" {
                        return None; // the sanctioned escape
                    }
                    // `-> path::Ty {` is a fn body, not a literal: walk
                    // the type path back to an arrow. The signature lies
                    // before `lo` (the body start), so bound by 0, not lo.
                    let mut k = j.wrapping_sub(1);
                    while k > 0 && (is_ident_start(file.text(k)) || file.text(k) == ":") {
                        k -= 1;
                    }
                    if file.text(k) == ">" && file.text(k.wrapping_sub(1)) == "-" {
                        return None;
                    }
                    return Some(format!("stored into struct literal `{name}`"));
                }
                return None; // a plain block: statement boundary
            }
            ";" if paren == 0 && brace == 0 && bracket == 0 => return None,
            _ => {}
        }
    }
    None
}

/// `arena-slot-escape`: `.slot` offsets or arena-row borrows stored
/// into structs/collections that outlive the round, directly or through
/// one `let`.
fn arena_slot_escape(pf: &ParsedFile, diags: &mut Vec<Diagnostic>) {
    let file = &pf.file;
    for fr in pf.file.functions() {
        if fr.in_test {
            continue;
        }
        let Some(body) = &fr.f.body else { continue };
        // Names bound from arena sources in this fn (one taint hop).
        let mut tainted: Vec<(String, usize)> = Vec::new();
        collect_taints(file, body, &mut tainted);
        for i in body.range.0..body.range.1 {
            let direct = arena_source_at(file, i);
            let via_taint = is_ident_start(file.text(i))
                && file.text(i.wrapping_sub(1)) != "."
                && tainted
                    .iter()
                    .any(|(name, bound_at)| name == file.text(i) && i > *bound_at);
            if !direct && !via_taint {
                continue;
            }
            if pf.in_test(i) {
                continue;
            }
            if let Some(how) = store_context(file, i, body.range.0) {
                let what = if direct {
                    "arena slot/row borrow"
                } else {
                    "value derived from an arena slot"
                };
                diags.push(pf.diag(
                    "arena-slot-escape",
                    i,
                    format!("{what} {how}; slots are recycled next round"),
                ));
            }
        }
    }
}

fn collect_taints(file: &SourceFile, scope: &Scope, out: &mut Vec<(String, usize)>) {
    for stmt in &scope.stmts {
        if let StmtKind::Let {
            names,
            init: Some(init),
        } = &stmt.kind
        {
            if (init.0..init.1).any(|i| arena_source_at(file, i)) {
                for name in names {
                    out.push((name.clone(), stmt.range.1));
                }
            }
        }
        for sub in &stmt.subs {
            collect_taints(file, sub, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(path: &str, src: &str) -> Vec<Diagnostic> {
        let pf = ParsedFile::parse(path, src);
        let mut diags = Vec::new();
        check_file(&pf, &mut diags);
        diags
    }

    #[test]
    fn underflow_fires_without_guard_and_not_with() {
        let bad = "fn f(d: IntervalId) -> u32 { d.index - 1 }";
        let diags = run("crates/recovery/src/line.rs", bad);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "index-underflow");

        let guarded = "fn f(d: IntervalId) -> u32 { if d.index > 0 { d.index - 1 } else { 0 } }";
        assert!(run("crates/recovery/src/line.rs", guarded).is_empty());

        let asserted = "fn f(d: IntervalId) -> u32 { debug_assert!(d.index >= 1); d.index - 1 }";
        assert!(run("crates/recovery/src/line.rs", asserted).is_empty());

        let early = "fn f(d: IntervalId) -> u32 { if d.index == 0 { return 0; } d.index - 1 }";
        assert!(run("crates/recovery/src/line.rs", early).is_empty());
    }

    #[test]
    fn underflow_sees_iv_suffix_and_loop_vars() {
        let iv = "fn f(deliver_iv: u32) -> u32 { deliver_iv - 1 }";
        assert_eq!(run("crates/rgraph/src/incremental.rs", iv).len(), 1);

        let loop0 = "fn f(v: &[u32]) { for i in 0..v.len() { let _ = v[i - 1]; } }";
        let diags = run("crates/core/src/x.rs", loop0);
        assert_eq!(diags.len(), 1, "{diags:?}");

        let loop1 = "fn f(v: &[u32]) { for i in 1..v.len() { let _ = v[i - 1]; } }";
        assert!(run("crates/core/src/x.rs", loop1).is_empty());
    }

    #[test]
    fn seed_provenance_follows_lets() {
        let bad = "fn f() { let rng = SimRng::seed(42); }";
        let diags = run("crates/sim/src/runner.rs", bad);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "seed-provenance");

        let bad_via_let = "fn f() { let s = 1234; let rng = SimRng::seed(s); }";
        assert_eq!(run("crates/sim/src/runner.rs", bad_via_let).len(), 1);

        let good = "fn f(config: &SimConfig) { let rng = SimRng::seed(config.seed); }";
        assert!(run("crates/sim/src/runner.rs", good).is_empty());

        let derived =
            "fn f(base: u64, i: u64) { let rng = SimRng::seed(SimRng::derive_seed(base, i)); }";
        assert!(run("crates/sim/src/runner.rs", derived).is_empty());
    }

    #[test]
    fn arena_escape_flags_stores_not_packedpiggyback() {
        let bad = "fn f(&mut self, pb: &PackedPiggyback) { self.kept.push(pb.slot); }";
        let diags = run("crates/core/src/executor.rs", bad);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "arena-slot-escape");

        let sanctioned =
            "fn before_send(&mut self) -> PackedPiggyback { PackedPiggyback { shared: s, slot, bytes } }";
        assert!(run("crates/core/src/executor.rs", sanctioned).is_empty());

        let via_let =
            "fn f(&mut self, pb: &PackedPiggyback) { let off = pb.slot; self.saved.push(off); }";
        assert_eq!(run("crates/core/src/executor.rs", via_let).len(), 1);
    }

    #[test]
    fn legacy_rules_still_fire_on_the_ast_engine() {
        assert_eq!(
            run("crates/core/src/x.rs", "use std::collections::HashMap;").len(),
            1
        );
        assert_eq!(
            run(
                "crates/sim/src/engine.rs",
                "fn f() { let t = Instant::now(); }"
            )
            .len(),
            1
        );
        assert_eq!(
            run(
                "crates/core/src/bhmr.rs",
                "fn f(x: Option<u32>) { x.unwrap(); }"
            )
            .len(),
            1
        );
        assert_eq!(
            run(
                "crates/sim/src/runner.rs",
                "fn f(p: &Pattern) { let a = PatternAnalysis::new(p); }"
            )
            .len(),
            1
        );
        assert_eq!(
            run(
                "crates/bench/src/sweep.rs",
                "fn f() { let r = SimRng::seed(7); }"
            )
            .iter()
            .filter(|d| d.rule == "sweep-seed")
            .count(),
            1
        );
    }

    #[test]
    fn cfg_test_code_is_exempt() {
        let src = "#[cfg(test)] mod tests { use std::collections::HashMap; fn f(x: Option<u32>) { x.unwrap(); } }";
        assert!(run("crates/core/src/x.rs", src).is_empty());
    }
}
