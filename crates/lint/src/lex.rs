//! A dependency-free Rust lexer producing spanned tokens.
//!
//! This is the first stage of the `rdt-lint` pipeline (lexer → token
//! tree → lightweight AST → rules). It recognises every literal form the
//! workspace uses — plain, raw (`r#"…"#` at any hash depth), byte
//! (`b"…"`) and raw-byte (`br#"…"#`) strings, char and byte literals,
//! lifetimes, nested block comments, raw identifiers — so the later
//! stages see *tokens*, never bytes that might be inside a string.
//!
//! The lexer is total: any byte sequence produces a token stream without
//! panicking (unterminated literals run to end of input, stray bytes
//! become `Unknown` tokens). A proptest in `tests/fixtures_corpus.rs`
//! pins this.

/// What kind of token a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including raw identifiers, `r#match`).
    Ident,
    /// Lifetime, e.g. `'a` (the tick is included in the span).
    Lifetime,
    /// Integer literal (any base, with suffix).
    Int,
    /// Float literal.
    Float,
    /// String-ish literal: `"…"`, `r"…"`, `b"…"`, `br#"…"#`.
    Str,
    /// Char or byte literal: `'x'`, `b'\n'`.
    Char,
    /// One punctuation byte (`.`, `:`, `-`, `&`, `[`, `{`, …).
    Punct,
    /// A byte the lexer could not classify (kept so spans stay exact).
    Unknown,
}

/// One token: kind plus byte span and 1-based line/column of its start.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// Token class.
    pub kind: TokKind,
    /// Byte offset of the first byte.
    pub lo: usize,
    /// Byte offset one past the last byte.
    pub hi: usize,
    /// 1-based line of `lo`.
    pub line: u32,
    /// 1-based column (in bytes) of `lo`.
    pub col: u32,
}

impl Token {
    /// The token's text within `src`.
    pub fn text<'s>(&self, src: &'s str) -> &'s str {
        src.get(self.lo..self.hi).unwrap_or("")
    }

    /// Whether this is a punct token for exactly `ch`.
    pub fn is_punct(&self, src: &str, ch: char) -> bool {
        self.kind == TokKind::Punct && self.text(src) == ch.to_string().as_str()
    }

    /// Whether this is an ident token with exactly this text.
    pub fn is_ident(&self, src: &str, text: &str) -> bool {
        self.kind == TokKind::Ident && self.text(src) == text
    }
}

fn is_ident_start(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphabetic() || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphanumeric() || b >= 0x80
}

/// Internal cursor over the source bytes with line/column tracking.
struct Cursor<'s> {
    bytes: &'s [u8],
    i: usize,
    line: u32,
    col: u32,
}

impl<'s> Cursor<'s> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.i + ahead).copied()
    }

    fn bump(&mut self) {
        if let Some(&b) = self.bytes.get(self.i) {
            self.i += 1;
            if b == b'\n' {
                self.line += 1;
                self.col = 1;
            } else {
                self.col += 1;
            }
        }
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    /// Consumes a `"`-delimited body honouring `\` escapes; the opening
    /// quote must already be consumed. Stops after the closing quote or
    /// at end of input.
    fn quoted_body(&mut self) {
        while let Some(b) = self.peek(0) {
            match b {
                b'\\' => self.bump_n(2),
                b'"' => {
                    self.bump();
                    return;
                }
                _ => self.bump(),
            }
        }
    }

    /// Consumes a raw-string body: the cursor sits on the first `#` or
    /// the opening quote. Returns `true` if this really was a raw string
    /// (otherwise the cursor is unmoved).
    fn raw_body(&mut self) -> bool {
        let mut hashes = 0;
        while self.peek(hashes) == Some(b'#') {
            hashes += 1;
        }
        if self.peek(hashes) != Some(b'"') {
            return false;
        }
        self.bump_n(hashes + 1);
        while let Some(b) = self.peek(0) {
            if b == b'"' {
                let mut k = 0;
                while k < hashes && self.peek(1 + k) == Some(b'#') {
                    k += 1;
                }
                if k == hashes {
                    self.bump_n(1 + hashes);
                    return true;
                }
            }
            self.bump();
        }
        true // unterminated: ran to end of input
    }
}

/// Lexes `src` into tokens. Comments and whitespace are dropped; every
/// other byte lands in exactly one token. Never panics.
pub fn lex(src: &str) -> Vec<Token> {
    let bytes = src.as_bytes();
    let mut cur = Cursor {
        bytes,
        i: 0,
        line: 1,
        col: 1,
    };
    let mut out = Vec::new();
    while let Some(b) = cur.peek(0) {
        let (lo, line, col) = (cur.i, cur.line, cur.col);
        let mut push = |cur: &Cursor, kind: TokKind| {
            debug_assert!(cur.i > lo, "lexer must always make progress");
            out.push(Token {
                kind,
                lo,
                hi: cur.i,
                line,
                col,
            });
        };
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => cur.bump(),
            b'/' if cur.peek(1) == Some(b'/') => {
                while cur.peek(0).is_some_and(|b| b != b'\n') {
                    cur.bump();
                }
            }
            b'/' if cur.peek(1) == Some(b'*') => {
                // Block comment, nesting honoured.
                cur.bump_n(2);
                let mut depth = 1usize;
                while depth > 0 {
                    match (cur.peek(0), cur.peek(1)) {
                        (Some(b'/'), Some(b'*')) => {
                            depth += 1;
                            cur.bump_n(2);
                        }
                        (Some(b'*'), Some(b'/')) => {
                            depth -= 1;
                            cur.bump_n(2);
                        }
                        (Some(_), _) => cur.bump(),
                        (None, _) => break,
                    }
                }
            }
            b'"' => {
                cur.bump();
                cur.quoted_body();
                push(&cur, TokKind::Str);
            }
            b'\'' => {
                // Char literal vs lifetime. `'\…'` or `'x'` is a char;
                // `'ident` without a closing quote is a lifetime.
                if cur.peek(1) == Some(b'\\') {
                    cur.bump_n(2); // ' and backslash
                    cur.bump(); // the escaped byte (handles \' and \\)
                    while cur.peek(0).is_some_and(|b| b != b'\'' && b != b'\n') {
                        cur.bump(); // \u{…} and friends
                    }
                    cur.bump(); // closing quote (or newline/EOF)
                    push(&cur, TokKind::Char);
                } else if cur.peek(2) == Some(b'\'')
                    && cur.peek(1).is_some_and(|c| c != b'\'' && c != b'\n')
                {
                    cur.bump_n(3);
                    push(&cur, TokKind::Char);
                } else if cur.peek(1).is_some_and(is_ident_start) {
                    cur.bump();
                    while cur.peek(0).is_some_and(is_ident_continue) {
                        cur.bump();
                    }
                    push(&cur, TokKind::Lifetime);
                } else {
                    cur.bump();
                    push(&cur, TokKind::Unknown);
                }
            }
            b'r' | b'b' if starts_prefixed_literal(bytes, cur.i) => {
                // r"…", r#"…"#, b"…", br"…", rb is not Rust but treated
                // as raw too (never panics), b'…'.
                let mut j = cur.i;
                while matches!(bytes.get(j), Some(b'r' | b'b')) {
                    j += 1;
                }
                let prefix = &bytes[cur.i..j];
                if bytes.get(j) == Some(&b'\'') {
                    // b'…' byte literal: reuse the char scanner by
                    // consuming the prefix first.
                    cur.bump_n(j - cur.i);
                    if cur.peek(1) == Some(b'\\') {
                        cur.bump_n(2);
                        cur.bump();
                        while cur.peek(0).is_some_and(|b| b != b'\'' && b != b'\n') {
                            cur.bump();
                        }
                        cur.bump();
                    } else {
                        cur.bump_n(3.min(bytes.len() - cur.i));
                    }
                    push(&cur, TokKind::Char);
                } else if prefix.contains(&b'r') {
                    cur.bump_n(j - cur.i);
                    if cur.raw_body() {
                        push(&cur, TokKind::Str);
                    } else {
                        // `r#ident` raw identifier or plain ident start.
                        while cur.peek(0) == Some(b'#') {
                            cur.bump();
                        }
                        while cur.peek(0).is_some_and(is_ident_continue) {
                            cur.bump();
                        }
                        push(&cur, TokKind::Ident);
                    }
                } else {
                    // b"…" byte string.
                    cur.bump_n(j - cur.i + 1);
                    cur.quoted_body();
                    push(&cur, TokKind::Str);
                }
            }
            _ if is_ident_start(b) => {
                cur.bump();
                while cur.peek(0).is_some_and(is_ident_continue) {
                    cur.bump();
                }
                push(&cur, TokKind::Ident);
            }
            _ if b.is_ascii_digit() => {
                cur.bump();
                let mut kind = TokKind::Int;
                while let Some(c) = cur.peek(0) {
                    if c.is_ascii_alphanumeric() || c == b'_' {
                        cur.bump();
                    } else if c == b'.'
                        && kind == TokKind::Int
                        && cur.peek(1).is_some_and(|d| d.is_ascii_digit())
                    {
                        // `1.5` is a float; `1..n` and `x.0` are not.
                        kind = TokKind::Float;
                        cur.bump();
                    } else {
                        break;
                    }
                }
                push(&cur, kind);
            }
            b'!' | b'#' | b'$' | b'%' | b'&' | b'(' | b')' | b'*' | b'+' | b',' | b'-' | b'.'
            | b'/' | b':' | b';' | b'<' | b'=' | b'>' | b'?' | b'@' | b'[' | b']' | b'^' | b'_'
            | b'{' | b'|' | b'}' | b'~' => {
                cur.bump();
                push(&cur, TokKind::Punct);
            }
            _ => {
                cur.bump();
                push(&cur, TokKind::Unknown);
            }
        }
    }
    out
}

/// Whether position `i` (an `r` or `b`) starts a prefixed literal
/// (`r"`, `r#"`, `b"`, `b'`, `br"`, `br#"`, `rb…`) rather than a plain
/// identifier. Also true for raw identifiers `r#ident`, which the caller
/// disambiguates via [`Cursor::raw_body`].
fn starts_prefixed_literal(bytes: &[u8], i: usize) -> bool {
    if i > 0 && is_ident_continue(bytes[i - 1]) {
        return false; // mid-identifier, e.g. the `r` in `four"…"` split
    }
    let mut j = i;
    while matches!(bytes.get(j), Some(b'r' | b'b')) && j - i < 2 {
        j += 1;
    }
    match bytes.get(j) {
        Some(b'"') => true,
        Some(b'\'') => bytes[i..j] == [b'b'], // only b'…' is a literal
        Some(b'#') => {
            // r#"…"# (raw string) or r#ident (raw identifier): both are
            // handled by the literal arm; anything else (`match!#`…) no.
            bytes[i..j].contains(&b'r')
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, &str)> {
        lex(src)
            .into_iter()
            .map(|t| (t.kind, t.text(src)))
            .collect()
    }

    #[test]
    fn raw_strings_every_hash_depth() {
        for src in [
            "r\"HashMap\"",
            "r#\"HashMap\"#",
            "r##\"quote \"# inside\"##",
        ] {
            let toks = kinds(src);
            assert_eq!(toks.len(), 1, "{src}: {toks:?}");
            assert_eq!(toks[0].0, TokKind::Str);
            assert_eq!(toks[0].1, src);
        }
    }

    #[test]
    fn byte_strings_and_byte_literals() {
        assert_eq!(kinds("b\"Instant\""), vec![(TokKind::Str, "b\"Instant\"")]);
        assert_eq!(
            kinds("br#\"SystemTime\"#"),
            vec![(TokKind::Str, "br#\"SystemTime\"#")]
        );
        assert_eq!(kinds("b'x'"), vec![(TokKind::Char, "b'x'")]);
        assert_eq!(kinds("b'\\''"), vec![(TokKind::Char, "b'\\''")]);
    }

    #[test]
    fn nested_block_comments_are_skipped() {
        let src = "a /* outer /* inner */ still comment */ z";
        assert_eq!(
            kinds(src),
            vec![(TokKind::Ident, "a"), (TokKind::Ident, "z")]
        );
    }

    #[test]
    fn escaped_backslash_does_not_eat_the_closing_quote() {
        let src = r#"let s = "a\\"; x"#;
        let toks = kinds(src);
        assert!(
            toks.contains(&(TokKind::Ident, "x")),
            "token after the string survives: {toks:?}"
        );
    }

    #[test]
    fn char_escapes_and_lifetimes() {
        assert_eq!(kinds("'\\''"), vec![(TokKind::Char, "'\\''")]);
        assert_eq!(kinds("'\\u{1F600}'"), vec![(TokKind::Char, "'\\u{1F600}'")]);
        assert_eq!(kinds("&'a str")[1], (TokKind::Lifetime, "'a"));
    }

    #[test]
    fn raw_identifiers_are_idents() {
        assert_eq!(kinds("r#match"), vec![(TokKind::Ident, "r#match")]);
    }

    #[test]
    fn identifier_ending_in_r_before_string_is_not_raw() {
        let toks = kinds("writer \"s\"");
        assert_eq!(toks[0], (TokKind::Ident, "writer"));
        assert_eq!(toks[1].0, TokKind::Str);
    }

    #[test]
    fn numbers_ranges_and_tuple_fields() {
        assert_eq!(kinds("1..n")[0], (TokKind::Int, "1"));
        assert_eq!(kinds("x.0")[2], (TokKind::Int, "0"));
        assert_eq!(kinds("1.5e3")[0], (TokKind::Float, "1.5e3"));
        assert_eq!(kinds("0xFF_u32")[0], (TokKind::Int, "0xFF_u32"));
    }

    #[test]
    fn line_and_column_tracking() {
        let src = "a\n  bb";
        let toks = lex(src);
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn lexer_is_total_on_garbage() {
        for src in [
            "\"unterminated",
            "r#\"open",
            "'\\",
            "b'",
            "\u{7f}\\💥",
            "/*",
        ] {
            let _ = lex(src); // must not panic
        }
    }
}
