//! `rdt-lint`: run the workspace determinism lint from the command line.
//!
//! ```text
//! rdt-lint [--root DIR] [--rules]
//! ```
//!
//! Exits 0 iff the workspace is clean (no findings outside `lint.allow`,
//! no stale allowlist entries).

use std::path::PathBuf;
use std::process::ExitCode;

fn workspace_root() -> PathBuf {
    // The binary lives in crates/lint; the workspace root is two up.
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn main() -> ExitCode {
    let mut root = workspace_root();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("rdt-lint: --root needs a directory");
                    return ExitCode::FAILURE;
                }
            },
            "--rules" => {
                for (id, summary) in rdt_lint::rule_catalog() {
                    println!("{id}: {summary}");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("usage: rdt-lint [--root DIR] [--rules]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("rdt-lint: unknown argument {other:?}");
                return ExitCode::FAILURE;
            }
        }
    }
    match rdt_lint::run_lint(&root) {
        Ok(report) => {
            print!("{}", report.render());
            if report.clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}
