//! `rdt-lint`: run the workspace determinism lint from the command line.
//!
//! ```text
//! rdt-lint [--root DIR] [--json | --sarif] [--rules] [--explain RULE]
//! ```
//!
//! Exits 0 iff the workspace is clean (no findings outside `lint.allow`,
//! no stale allowlist entries). `--json` prints a machine-readable report
//! (stable keys, `elapsed_ns` carries the scan's wall time); `--sarif`
//! prints SARIF 2.1.0 for code-scanning upload. Both still exit non-zero
//! on findings so CI fails the job while keeping the artifact.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

#[derive(Clone, Copy, PartialEq)]
enum Output {
    Text,
    Json,
    Sarif,
}

fn workspace_root() -> PathBuf {
    // The binary lives in crates/lint; the workspace root is two up.
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

const USAGE: &str = "usage: rdt-lint [--root DIR] [--json | --sarif] [--rules] [--explain RULE]";

fn main() -> ExitCode {
    let mut root = workspace_root();
    let mut output = Output::Text;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("rdt-lint: --root needs a directory");
                    return ExitCode::FAILURE;
                }
            },
            "--json" => output = Output::Json,
            "--sarif" => output = Output::Sarif,
            "--rules" => {
                for (id, summary) in rdt_lint::rule_catalog() {
                    println!("{id}: {summary}");
                }
                return ExitCode::SUCCESS;
            }
            "--explain" => {
                let Some(id) = args.next() else {
                    eprintln!("rdt-lint: --explain needs a rule id (see --rules)");
                    return ExitCode::FAILURE;
                };
                match rdt_lint::explain(&id) {
                    Some(text) => {
                        println!("{id}\n{}\n\n{text}", "=".repeat(id.len()));
                        return ExitCode::SUCCESS;
                    }
                    None => {
                        eprintln!("rdt-lint: unknown rule {id:?} (see --rules)");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("rdt-lint: unknown argument {other:?}\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    let start = Instant::now();
    match rdt_lint::run_lint(&root) {
        Ok(report) => {
            let elapsed_ns = start.elapsed().as_nanos() as u64;
            match output {
                Output::Text => print!("{}", report.render()),
                Output::Json => println!("{}", report.to_json(elapsed_ns).pretty()),
                Output::Sarif => println!("{}", report.to_sarif().pretty()),
            }
            if report.clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(message) => {
            eprintln!("rdt-lint: {message}");
            ExitCode::FAILURE
        }
    }
}
