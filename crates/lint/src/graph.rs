//! Workspace call graph and the `panic-reachability` analysis.
//!
//! Nodes are the non-test functions of every parsed file, keyed by bare
//! name and, when known, the `impl` self type. Edges come from
//! `name(`-shaped call tokens in function bodies: a `Qual::name(` call
//! with a known `Qual` resolves to that type's methods only, everything
//! else over-approximates to every function with the bare name (trait
//! and method calls included). The search starts from the protocol
//! entry points — the executor's send/arrival steps, the certifier
//! replay functions, and the fallible recovery-line API — and reports
//! every reachable *panic site*:
//!
//! * `panic!` / `unreachable!` / `todo!` / `unimplemented!`,
//! * `.unwrap(` / `.expect(`,
//! * slice indexing whose index expression contains an unguarded
//!   subtraction (the underflow-to-out-of-bounds route; ordinary
//!   bounded indexing — loop binders, masked/guarded offsets — is the
//!   workspace's arena idiom and is screened out).
//!
//! Each finding carries one witness call path from an entry point.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::rules::ParsedFile;
use crate::syntax::{guard_chain, FnRef, Guard, Scope};
use crate::Diagnostic;

/// The protocol entry points: (required self type, fn name, required
/// path prefix).
const ENTRY_POINTS: &[(Option<&str>, &str, &str)] = &[
    (Some("ExecutorCell"), "before_send", "crates/core/src/"),
    (
        Some("ExecutorCell"),
        "on_message_arrival",
        "crates/core/src/",
    ),
    (Some("ExecutorCell"), "on_checkpoint", "crates/core/src/"),
    (None, "replay_protocol_ops", "crates/verify/src/"),
    (None, "replay_ops", "crates/verify/src/"),
    (None, "replay_ops_legacy", "crates/verify/src/"),
    (None, "build_pattern", "crates/verify/src/"),
    // The orbit-pruned enumeration pipeline: work units are produced by
    // `enumerate_units` and consumed on worker threads by `run_unit`, so
    // a panic anywhere below either one takes down a certification run.
    (Some("OrbitContext"), "run_unit", "crates/verify/src/"),
    (None, "enumerate_units", "crates/verify/src/"),
    (None, "try_recovery_line", "crates/recovery/src/"),
    (None, "try_lost_messages", "crates/recovery/src/"),
    (None, "try_analyze", "crates/recovery/src/"),
    (None, "max_consistent_dominated_into", "crates/rgraph/src/"),
    // The streaming daemon's ingest path: every client byte flows
    // through `parse_request` and every parsed request through a shard's
    // `handle_request`, so a reachable panic below either one is a
    // remote denial-of-service. Snapshot restore (`from_stream_snapshot`)
    // additionally consumes on-disk state that may be corrupt.
    (None, "parse_request", "crates/serve/src/"),
    (None, "handle_request", "crates/serve/src/"),
    (
        Some("StreamEngine"),
        "from_stream_snapshot",
        "crates/serve/src/",
    ),
];

/// Keywords and builtins that look like calls but never are.
fn is_call_keyword(text: &str) -> bool {
    matches!(
        text,
        "if" | "while"
            | "for"
            | "match"
            | "loop"
            | "return"
            | "fn"
            | "let"
            | "move"
            | "in"
            | "as"
            | "ref"
            | "mut"
            | "else"
            | "unsafe"
            | "break"
            | "continue"
            | "where"
            | "impl"
            | "dyn"
            | "Some"
            | "Ok"
            | "Err"
            | "None"
    )
}

/// Method names shared with the standard library's collections and
/// traits. An unqualified `.name(` call with one of these names almost
/// always targets a `Vec`/`BTreeMap`/iterator, so edging to every
/// workspace method of the same name would wire unrelated subsystems
/// together (e.g. `line.get(p)` → an analysis cache's `get`). Qualified
/// calls (`Type::name(`) still resolve precisely.
const AMBIENT_METHODS: &[&str] = &[
    "new", "get", "get_mut", "insert", "push", "pop", "extend", "last", "first", "len", "is_empty",
    "clear", "clone", "iter", "iter_mut", "next", "contains", "remove", "entry", "keys", "values",
    "fmt", "eq", "cmp", "hash", "default", "drop", "from", "into", "build", "min", "max",
];

struct Node<'a> {
    file: &'a ParsedFile,
    fr: FnRef<'a>,
}

/// Runs `panic-reachability` over the whole parsed workspace.
pub fn panic_reachability(files: &[ParsedFile], diags: &mut Vec<Diagnostic>) {
    // --- nodes --------------------------------------------------------
    let mut nodes: Vec<Node<'_>> = Vec::new();
    for pf in files {
        if !crate::rules::analysis_scope(&pf.path) {
            continue;
        }
        for fr in pf.file.functions() {
            if fr.in_test || fr.f.body.is_none() {
                continue;
            }
            nodes.push(Node { file: pf, fr });
        }
    }
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut self_tys: BTreeSet<&str> = BTreeSet::new();
    for (id, node) in nodes.iter().enumerate() {
        by_name.entry(node.fr.f.name.as_str()).or_default().push(id);
        if let Some(ty) = node.fr.self_ty {
            self_tys.insert(ty);
        }
    }

    // --- edges --------------------------------------------------------
    let mut edges: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    for (id, node) in nodes.iter().enumerate() {
        let file = &node.file.file;
        let body = node.fr.f.body.as_ref().expect("body checked above");
        let mut out: BTreeSet<usize> = BTreeSet::new();
        for i in body.range.0..body.range.1 {
            if file.text(i + 1) != "(" {
                continue;
            }
            let name = file.text(i);
            if !name
                .chars()
                .next()
                .is_some_and(|c| c.is_alphabetic() || c == '_')
                || is_call_keyword(name)
            {
                continue;
            }
            let Some(candidates) = by_name.get(name) else {
                continue;
            };
            let is_method = i >= 1 && file.text(i - 1) == ".";
            if is_method && AMBIENT_METHODS.contains(&name) {
                continue;
            }
            // `Qual::name(`: a known impl type narrows the target; a
            // foreign (capitalized, unknown) type is std or another
            // crate and contributes no workspace edge; a lowercase
            // qualifier is a module path and stays name-resolved.
            let mut qual = None;
            // `self.name(`: the receiver type is the enclosing impl's —
            // resolve to that type's own method when it defines one.
            if is_method && i >= 2 && file.text(i - 2) == "self" {
                if let Some(ty) = node.fr.self_ty {
                    if candidates.iter().any(|&t| nodes[t].fr.self_ty == Some(ty)) {
                        qual = Some(ty);
                    }
                }
            }
            if i >= 3 && file.text(i - 1) == ":" && file.text(i - 2) == ":" {
                let q = file.text(i - 3);
                if self_tys.contains(q) {
                    qual = Some(q);
                } else if q.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
                    continue;
                }
            }
            for &target in candidates {
                if target == id {
                    continue;
                }
                if let Some(qual) = qual {
                    if nodes[target].fr.self_ty != Some(qual) {
                        continue;
                    }
                }
                out.insert(target);
            }
        }
        edges[id] = out.into_iter().collect();
    }

    // --- entry points + BFS ------------------------------------------
    let mut queue: VecDeque<usize> = VecDeque::new();
    let mut pred: Vec<Option<usize>> = vec![None; nodes.len()];
    let mut seen: Vec<bool> = vec![false; nodes.len()];
    for (id, node) in nodes.iter().enumerate() {
        let is_entry = ENTRY_POINTS.iter().any(|(ty, name, prefix)| {
            node.fr.f.name == *name
                && node.file.path.starts_with(prefix)
                && ty.is_none_or(|ty| node.fr.self_ty == Some(ty))
        });
        if is_entry {
            seen[id] = true;
            queue.push_back(id);
        }
    }
    while let Some(id) = queue.pop_front() {
        for &next in &edges[id] {
            if !seen[next] {
                seen[next] = true;
                pred[next] = Some(id);
                queue.push_back(next);
            }
        }
    }

    // --- panic sites in reachable fns --------------------------------
    for (id, node) in nodes.iter().enumerate() {
        if !seen[id] {
            continue;
        }
        let body = node.fr.f.body.as_ref().expect("body checked above");
        let mut sites = Vec::new();
        collect_sites(node.file, body, &mut sites);
        if sites.is_empty() {
            continue;
        }
        // Witness path entry → … → this fn.
        let mut path = vec![id];
        while let Some(p) = pred[*path.last().expect("nonempty")] {
            path.push(p);
            if path.len() > 64 {
                break;
            }
        }
        let trail: Vec<&str> = path
            .iter()
            .rev()
            .map(|&n| nodes[n].fr.f.name.as_str())
            .collect();
        for (tok, what) in sites {
            diags.push(node.file.diag(
                "panic-reachability",
                tok,
                format!("{what} reachable via {}", trail.join(" → ")),
            ));
        }
    }
}

/// Panic sites inside one fn body: `(token, description)`.
fn collect_sites(pf: &ParsedFile, body: &Scope, out: &mut Vec<(usize, String)>) {
    let file = &pf.file;
    for i in body.range.0..body.range.1 {
        let text = file.text(i);
        if matches!(text, "panic" | "unreachable" | "todo" | "unimplemented")
            && file.text(i + 1) == "!"
        {
            out.push((i, format!("{text}! ")));
            continue;
        }
        if text == "." && matches!(file.text(i + 1), "unwrap" | "expect") && file.text(i + 2) == "("
        {
            out.push((i, format!(".{}()", file.text(i + 1))));
            continue;
        }
        // Indexing whose index expression subtracts without a guard.
        if text == "[" {
            let prev = file.text(i.wrapping_sub(1));
            let postfix = prev == ")"
                || prev == "]"
                || (prev
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_alphanumeric() || c == '_')
                    && !matches!(prev, "as" | "in" | "return" | "break"));
            if !postfix {
                continue;
            }
            // Find the matching `]` by depth.
            let mut depth = 0i64;
            let mut close = i;
            while close < body.range.1 {
                match file.text(close) {
                    "[" | "(" | "{" => depth += 1,
                    "]" | ")" | "}" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                close += 1;
            }
            let idx = (i + 1, close);
            if idx.0 >= idx.1 {
                continue;
            }
            if index_expr_is_hazardous(pf, body, idx) {
                out.push((
                    i,
                    format!(
                        "indexing `[{}]` with unguarded subtraction",
                        file.render(idx)
                    ),
                ));
            }
        }
    }
}

/// Whether an index expression contains a subtraction not screened by
/// any dominating guard, loop binder, range, or mask.
fn index_expr_is_hazardous(pf: &ParsedFile, body: &Scope, idx: (usize, usize)) -> bool {
    let file = &pf.file;
    let has_minus = (idx.0..idx.1).any(|i| {
        file.text(i) == "-"
            // prefix minus on a literal (`arr[-1]` is not valid Rust for
            // arrays, but keep the check shaped for subtraction only)
            && i > idx.0
    });
    if !has_minus {
        return false;
    }
    // Ranges/slicing, masking and modulo are the bounded-arena idiom.
    if (idx.0..idx.1.saturating_sub(1)).any(|i| file.text(i) == "." && file.text(i + 1) == ".") {
        return false;
    }
    if (idx.0..idx.1)
        .any(|i| matches!(file.text(i), "%" | "min" | "saturating_sub" | "checked_sub"))
    {
        return false;
    }
    // Any ident of the expression bound by a loop or mentioned in a
    // dominating guard/assert screens the site.
    let guards = guard_chain(file, body, idx.0);
    for i in idx.0..idx.1 {
        let name = file.text(i);
        if !name
            .chars()
            .next()
            .is_some_and(|c| c.is_alphabetic() || c == '_')
        {
            continue;
        }
        for g in &guards {
            match g {
                Guard::ForBinder { binders, .. } if binders.iter().any(|b| b == name) => {
                    return false
                }
                Guard::True(c) | Guard::False(c) | Guard::Assert(c)
                    if (c.0..c.1).any(|k| file.text(k) == name) =>
                {
                    return false;
                }
                _ => {}
            }
        }
    }
    true
}
