//! Determinism and robustness lint over the workspace's own sources.
//!
//! The experiment harness stakes its reproducibility claims on a handful
//! of source-level invariants that the compiler cannot enforce:
//!
//! * result paths never iterate hash-ordered collections,
//! * nothing outside the metrics layer reads the host clock,
//! * protocol state machines and the certifier never panic via
//!   `unwrap`/`expect`,
//! * sweep code derives every RNG seed from the grid position instead of
//!   seeding ad hoc.
//!
//! `rdt-lint` enforces these as deny-by-default diagnostics. It is a
//! *lexical* linter — a small lexer strips comments, strings, char
//! literals and `#[cfg(test)]` regions, then each rule scans the
//! remaining tokens of the files in its scope — so it has no external
//! dependencies and runs in milliseconds in CI. Intentional exceptions
//! go in the workspace-root `lint.allow` file, one justified entry per
//! line; stale entries fail the run so the allowlist cannot rot.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// How a rule's needles are matched against the blanked source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Needle {
    /// A standalone identifier (neither preceded nor followed by an
    /// identifier character).
    Ident(&'static str),
    /// A literal fragment, e.g. `".unwrap("`.
    Fragment(&'static str),
}

impl Needle {
    fn text(&self) -> &'static str {
        match self {
            Needle::Ident(t) | Needle::Fragment(t) => t,
        }
    }

    fn matches_at(&self, hay: &[u8], at: usize) -> bool {
        let text = self.text().as_bytes();
        if let Needle::Ident(_) = self {
            let ident = |b: u8| b == b'_' || b.is_ascii_alphanumeric();
            if at > 0 && ident(hay[at - 1]) {
                return false;
            }
            let end = at + text.len();
            if end < hay.len() && ident(hay[end]) {
                return false;
            }
        }
        true
    }
}

/// One lint rule: an id, the sources it applies to, and what it forbids.
struct Rule {
    id: &'static str,
    summary: &'static str,
    needles: &'static [Needle],
    applies: fn(&str) -> bool,
    /// When `Some`, the needles only count inside the brace bodies of
    /// functions with these names; elsewhere in the file they are fine.
    within: Option<&'static [&'static str]>,
}

/// Whether `path` (workspace-relative, `/`-separated) is a source file in
/// a deterministic *result path*: protocol state machines, simulator,
/// theory checkers, certifier, and the experiment harness.
fn in_result_path(path: &str) -> bool {
    [
        "crates/core/src/",
        "crates/sim/src/",
        "crates/bench/src/",
        "crates/rgraph/src/",
        "crates/verify/src/",
    ]
    .iter()
    .any(|prefix| path.starts_with(prefix))
}

/// Whether `path` may legally read the host clock: only files named
/// `metrics.rs` (the designated metrics layers) and the Criterion shim,
/// whose whole point is timing.
fn wall_clock_scope(path: &str) -> bool {
    let in_src =
        path.starts_with("src/") || (path.starts_with("crates/") && path.contains("/src/"));
    in_src && !path.ends_with("/metrics.rs") && !path.starts_with("crates/criterion-shim/")
}

/// Whether `path` holds protocol or certifier state-machine code, where a
/// panic would take down a whole replay or sweep.
fn protocol_scope(path: &str) -> bool {
    path.starts_with("crates/core/src/")
        || path.starts_with("crates/verify/src/")
        || path == "crates/rgraph/src/replay.rs"
}

/// Whether `path` holds per-event code — the simulator's event loop and
/// the certifier's replay pipeline — where constructing a batch analysis
/// means rebuilding closures from scratch at every step instead of
/// appending to one [`IncrementalAnalysis`](rdt_rgraph::IncrementalAnalysis)-style
/// engine. The bench crate is deliberately out of scope: comparing the
/// two strategies is its job.
fn per_event_scope(path: &str) -> bool {
    path.starts_with("crates/sim/src/") || path.starts_with("crates/verify/src/")
}

/// Whether `path` holds code on the zero-allocation send/arrival hot
/// path: the packed round-executor and the simulator that drives it.
/// The legacy protocol implementations elsewhere in `crates/core` are
/// out of scope by design — they are the allocation-heavy differential
/// oracles the executor is measured against.
fn hot_step_scope(path: &str) -> bool {
    path == "crates/core/src/executor.rs" || path.starts_with("crates/sim/src/")
}

/// The rule catalog (documented in `docs/VERIFICATION.md`).
const RULES: &[Rule] = &[
    Rule {
        id: "hash-collections",
        summary: "hash-ordered collection in a deterministic result path; \
                  use BTreeMap/BTreeSet or a Vec",
        needles: &[Needle::Ident("HashMap"), Needle::Ident("HashSet")],
        applies: in_result_path,
        within: None,
    },
    Rule {
        id: "wall-clock",
        summary: "host clock read outside the metrics layer; route timing \
                  through rdt_sim::Stopwatch in a metrics.rs",
        needles: &[Needle::Ident("Instant"), Needle::Ident("SystemTime")],
        applies: wall_clock_scope,
        within: None,
    },
    Rule {
        id: "protocol-unwrap",
        summary: "unwrap/expect in protocol or certifier state-machine \
                  code; propagate an error instead",
        needles: &[Needle::Fragment(".unwrap("), Needle::Fragment(".expect(")],
        applies: protocol_scope,
        within: None,
    },
    Rule {
        id: "batch-in-loop",
        summary: "batch analysis constructor in per-event simulator or \
                  certifier code; maintain one rdt_rgraph::IncrementalAnalysis \
                  and append events instead",
        needles: &[
            Needle::Fragment("PatternAnalysis::new("),
            Needle::Fragment("RdtChecker::new("),
            Needle::Fragment("ZigzagReachability::new("),
        ],
        applies: per_event_scope,
        within: None,
    },
    Rule {
        id: "sweep-seed",
        summary: "ad-hoc RNG seeding in sweep code; derive per-point seeds \
                  with SimRng::derive_seed",
        needles: &[Needle::Fragment("SimRng::seed(")],
        applies: |path| path.starts_with("crates/bench/"),
        within: None,
    },
    Rule {
        id: "alloc-in-step",
        summary: "heap allocation in an executor send/arrival step; write \
                  piggybacks into the recycled scratch arena instead",
        needles: &[
            Needle::Fragment("Vec::new("),
            Needle::Fragment(".to_vec("),
            Needle::Fragment(".clone("),
        ],
        applies: hot_step_scope,
        within: Some(&["before_send", "on_message_arrival"]),
    },
];

/// Descriptions of every rule, for `rdt-lint --rules` and the docs test.
pub fn rule_catalog() -> Vec<(&'static str, &'static str)> {
    RULES.iter().map(|r| (r.id, r.summary)).collect()
}

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule that fired.
    pub rule: &'static str,
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// The offending source line, trimmed.
    pub snippet: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.snippet
        )
    }
}

/// Outcome of one lint run.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Findings not covered by the allowlist (must be empty to pass).
    pub diagnostics: Vec<Diagnostic>,
    /// Findings suppressed by an allowlist entry.
    pub allowed: Vec<Diagnostic>,
    /// Allowlist entries that matched nothing (also fail the run).
    pub stale_allows: Vec<String>,
    /// Files scanned.
    pub files_scanned: usize,
}

impl LintReport {
    /// `true` iff the run passes: no diagnostics, no stale entries.
    pub fn clean(&self) -> bool {
        self.diagnostics.is_empty() && self.stale_allows.is_empty()
    }

    /// Human-readable rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for diag in &self.diagnostics {
            out.push_str(&format!("{diag}\n"));
        }
        for stale in &self.stale_allows {
            out.push_str(&format!(
                "lint.allow: stale entry (matched nothing): {stale}\n"
            ));
        }
        out.push_str(&format!(
            "rdt-lint: {} file(s), {} finding(s), {} allowed, {} stale allow(s): {}\n",
            self.files_scanned,
            self.diagnostics.len(),
            self.allowed.len(),
            self.stale_allows.len(),
            if self.clean() { "clean" } else { "FAILED" },
        ));
        out
    }
}

/// Blanks comments, string/char literals, and `#[cfg(test)]` items so the
/// rule needles only see production tokens. Newlines are preserved so
/// line numbers survive.
fn blank_source(source: &str) -> String {
    let bytes = source.as_bytes();
    let mut out = bytes.to_vec();
    let mut i = 0;
    let blank = |out: &mut Vec<u8>, from: usize, to: usize| {
        for b in &mut out[from..to] {
            if *b != b'\n' {
                *b = b' ';
            }
        }
    };
    while i < bytes.len() {
        match bytes[i] {
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                blank(&mut out, start, i);
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let start = i;
                let mut depth = 1;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                blank(&mut out, start, i);
            }
            b'"' => {
                let start = i;
                i += 1;
                while i < bytes.len() && bytes[i] != b'"' {
                    i += if bytes[i] == b'\\' { 2 } else { 1 };
                }
                i = (i + 1).min(bytes.len());
                blank(&mut out, start, i);
            }
            b'r' if matches!(bytes.get(i + 1), Some(b'"' | b'#')) => {
                // Raw string r"..." / r#"..."# (any hash depth).
                let start = i;
                let mut j = i + 1;
                let mut hashes = 0;
                while bytes.get(j) == Some(&b'#') {
                    hashes += 1;
                    j += 1;
                }
                if bytes.get(j) == Some(&b'"') {
                    j += 1;
                    'scan: while j < bytes.len() {
                        if bytes[j] == b'"' {
                            let mut k = 0;
                            while k < hashes && bytes.get(j + 1 + k) == Some(&b'#') {
                                k += 1;
                            }
                            if k == hashes {
                                j += 1 + hashes;
                                break 'scan;
                            }
                        }
                        j += 1;
                    }
                    blank(&mut out, start, j);
                    i = j;
                } else {
                    i += 1; // plain identifier starting with r
                }
            }
            b'\'' => {
                // Char literal or lifetime. A lifetime ('a) has no closing
                // quote within a couple of bytes; a char literal does.
                let close = if bytes.get(i + 1) == Some(&b'\\') {
                    bytes[i + 2..]
                        .iter()
                        .position(|&b| b == b'\'')
                        .map(|p| i + 2 + p)
                } else if bytes.get(i + 2) == Some(&b'\'') {
                    Some(i + 2)
                } else {
                    None
                };
                match close {
                    Some(end) => {
                        blank(&mut out, i, end + 1);
                        i = end + 1;
                    }
                    None => i += 1, // lifetime
                }
            }
            _ => i += 1,
        }
    }

    // Blank `#[cfg(test)]`-gated items (modules or single functions): from
    // the attribute to the end of the item's brace block.
    let text = String::from_utf8_lossy(&out).into_owned();
    let mut out = text.clone().into_bytes();
    let mut search_from = 0;
    while let Some(found) = text[search_from..].find("#[cfg(test)]") {
        let attr_at = search_from + found;
        let Some(open_rel) = text[attr_at..].find('{') else {
            break;
        };
        let mut depth = 0usize;
        let mut end = text.len();
        for (offset, b) in text[attr_at + open_rel..].bytes().enumerate() {
            match b {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        end = attr_at + open_rel + offset + 1;
                        break;
                    }
                }
                _ => {}
            }
        }
        for b in &mut out[attr_at..end] {
            if *b != b'\n' {
                *b = b' ';
            }
        }
        search_from = end;
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Byte ranges of the brace bodies of every function named in `fns`
/// within already-blanked source. Signatures never contain `{`, and
/// blanking removed strings and comments, so scanning from the first
/// `{` after `fn <name>` to its matching `}` is exact.
fn body_ranges(blanked: &str, fns: &[&str]) -> Vec<(usize, usize)> {
    let bytes = blanked.as_bytes();
    let ident = |b: u8| b == b'_' || b.is_ascii_alphanumeric();
    let mut ranges = Vec::new();
    for name in fns {
        let header = format!("fn {name}");
        let mut from = 0;
        while let Some(found) = blanked[from..].find(&header) {
            let after = from + found + header.len();
            from = after;
            if bytes.get(after).copied().is_some_and(ident) {
                continue; // e.g. `fn before_send_raw`
            }
            let Some(open_rel) = blanked[after..].find('{') else {
                continue; // trait method declaration, no body
            };
            let open = after + open_rel;
            let mut depth = 0usize;
            for (offset, &b) in bytes[open..].iter().enumerate() {
                match b {
                    b'{' => depth += 1,
                    b'}' => {
                        depth -= 1;
                        if depth == 0 {
                            ranges.push((open, open + offset));
                            break;
                        }
                    }
                    _ => {}
                }
            }
        }
    }
    ranges
}

/// Scans one file's already-blanked source with every applicable rule.
fn scan_file(path: &str, blanked: &str, diagnostics: &mut Vec<Diagnostic>) {
    let original_lines: Vec<&str> = blanked.lines().collect();
    for rule in RULES {
        if !(rule.applies)(path) {
            continue;
        }
        let bodies = rule.within.map(|fns| body_ranges(blanked, fns));
        for needle in rule.needles {
            let hay = blanked.as_bytes();
            let mut from = 0;
            while let Some(found) = blanked[from..].find(needle.text()) {
                let at = from + found;
                from = at + 1;
                if !needle.matches_at(hay, at) {
                    continue;
                }
                if let Some(bodies) = &bodies {
                    if !bodies.iter().any(|&(open, close)| at > open && at < close) {
                        continue;
                    }
                }
                let line = blanked[..at].bytes().filter(|&b| b == b'\n').count() + 1;
                diagnostics.push(Diagnostic {
                    rule: rule.id,
                    path: path.to_string(),
                    line,
                    snippet: original_lines
                        .get(line - 1)
                        .map_or(String::new(), |l| l.trim().to_string()),
                });
            }
        }
    }
}

/// Collects every `.rs` file under `root`, skipping `target` and
/// dot-directories, in sorted (deterministic) order.
fn collect_sources(root: &Path) -> Result<Vec<PathBuf>, String> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let entries =
            fs::read_dir(&dir).map_err(|e| format!("lint: cannot read {}: {e}", dir.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("lint: {e}"))?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name != "target" && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Parses `lint.allow`: one `rule-id path` pair per line, `#` comments.
fn parse_allowlist(text: &str) -> Result<Vec<(String, String)>, String> {
    let mut out = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        match (parts.next(), parts.next(), parts.next()) {
            (Some(rule), Some(path), None) => out.push((rule.to_string(), path.to_string())),
            _ => {
                return Err(format!(
                    "lint.allow:{}: expected \"rule-id path\", got {raw:?}",
                    lineno + 1
                ))
            }
        }
    }
    Ok(out)
}

/// Runs the lint over the workspace rooted at `root`.
///
/// # Errors
///
/// Returns a message if sources or the allowlist cannot be read.
pub fn run_lint(root: &Path) -> Result<LintReport, String> {
    let mut report = LintReport::default();
    let mut diagnostics = Vec::new();
    for path in collect_sources(root)? {
        let rel = path
            .strip_prefix(root)
            .map_err(|_| format!("lint: {} escapes the root", path.display()))?
            .to_string_lossy()
            .replace('\\', "/");
        let source =
            fs::read_to_string(&path).map_err(|e| format!("lint: {}: {e}", path.display()))?;
        report.files_scanned += 1;
        scan_file(&rel, &blank_source(&source), &mut diagnostics);
    }
    diagnostics.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));

    let allow_path = root.join("lint.allow");
    let allows = if allow_path.exists() {
        let text = fs::read_to_string(&allow_path).map_err(|e| format!("lint.allow: {e}"))?;
        parse_allowlist(&text)?
    } else {
        Vec::new()
    };
    let mut allow_hits: BTreeMap<usize, usize> = BTreeMap::new();
    for diag in diagnostics {
        let hit = allows
            .iter()
            .position(|(rule, path)| *rule == diag.rule && *path == diag.path);
        match hit {
            Some(index) => {
                *allow_hits.entry(index).or_insert(0) += 1;
                report.allowed.push(diag);
            }
            None => report.diagnostics.push(diag),
        }
    }
    for (index, (rule, path)) in allows.iter().enumerate() {
        if !allow_hits.contains_key(&index) {
            report.stale_allows.push(format!("{rule} {path}"));
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blanking_strips_comments_strings_and_tests() {
        let source = r##"
// HashMap in a comment
fn f() {
    let s = "HashMap in a string";
    let r = r#"HashMap raw"#;
    let c = '"';
}
#[cfg(test)]
mod tests {
    use std::collections::HashMap; // real, but test-only
}
"##;
        let blanked = blank_source(source);
        assert!(!blanked.contains("HashMap"), "{blanked}");
        assert_eq!(blanked.lines().count(), source.lines().count());
    }

    #[test]
    fn ident_needles_respect_token_boundaries() {
        let mut diags = Vec::new();
        scan_file(
            "crates/core/src/x.rs",
            "type MyHashMapLike = (); use std::collections::HashMap;",
            &mut diags,
        );
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "hash-collections");
    }

    #[test]
    fn rules_scope_by_path() {
        let mut diags = Vec::new();
        // workloads is not a result path: HashMap allowed there.
        scan_file("crates/workloads/src/x.rs", "HashMap", &mut diags);
        assert!(diags.is_empty());
        // metrics.rs may read the clock; its siblings may not.
        scan_file("crates/sim/src/metrics.rs", "Instant::now()", &mut diags);
        assert!(diags.is_empty());
        scan_file("crates/sim/src/engine.rs", "Instant::now()", &mut diags);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "wall-clock");
    }

    #[test]
    fn unwrap_rule_hits_protocol_code_only() {
        let mut diags = Vec::new();
        scan_file("crates/core/src/bhmr.rs", "x.unwrap();", &mut diags);
        scan_file("crates/bench/src/parallel.rs", "x.unwrap();", &mut diags);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].path, "crates/core/src/bhmr.rs");
    }

    #[test]
    fn allowlist_parses_and_rejects_garbage() {
        let allows = parse_allowlist("# comment\nwall-clock src/x.rs # reason\n\n").unwrap();
        assert_eq!(allows, vec![("wall-clock".into(), "src/x.rs".into())]);
        assert!(parse_allowlist("too many fields here").is_err());
    }

    #[test]
    fn catalog_is_nonempty_and_unique() {
        let catalog = rule_catalog();
        assert_eq!(catalog.len(), 6);
        let mut ids: Vec<_> = catalog.iter().map(|(id, _)| id).collect();
        ids.dedup();
        assert_eq!(ids.len(), 6);
    }

    #[test]
    fn alloc_rule_fires_only_inside_step_bodies() {
        // Allocation is fine in setup code (constructors, Drop, tests);
        // the rule bites only inside before_send / on_message_arrival.
        let source = "\
impl ExecutorState {
    fn new(n: usize) -> Self { let v = Vec::new(); Self { v } }
    fn before_send(&mut self, dest: ProcessId) -> SendOutcome<P> {
        let copy = self.tdv.to_vec();
        SendOutcome { piggyback: copy.clone() }
    }
    fn on_message_arrival(&mut self, s: ProcessId, p: &P) -> ArrivalOutcome {
        if p.fresh { self.scratch = Vec::new(); }
        ArrivalOutcome::None
    }
    fn before_send_raw(&mut self) { let _ = Vec::new(); }
}
";
        let mut diags = Vec::new();
        scan_file("crates/core/src/executor.rs", source, &mut diags);
        let alloc: Vec<_> = diags.iter().filter(|d| d.rule == "alloc-in-step").collect();
        assert_eq!(alloc.len(), 3, "{alloc:?}");
        assert!(alloc.iter().all(|d| (4..=9).contains(&d.line)), "{alloc:?}");
        // The legacy oracle implementations stay out of scope.
        diags.clear();
        scan_file("crates/core/src/bhmr.rs", source, &mut diags);
        assert!(!diags.iter().any(|d| d.rule == "alloc-in-step"));
    }

    #[test]
    fn batch_constructor_rule_hits_per_event_code_only() {
        let mut diags = Vec::new();
        // The bench crate compares batch vs incremental on purpose.
        scan_file(
            "crates/bench/src/experiment.rs",
            "RdtChecker::new(&pattern).check();",
            &mut diags,
        );
        assert!(diags.is_empty());
        scan_file(
            "crates/sim/src/runner.rs",
            "let a = RdtChecker::new(&pattern); let b = PatternAnalysis::new(&p);",
            &mut diags,
        );
        assert_eq!(diags.len(), 2);
        assert!(diags.iter().all(|d| d.rule == "batch-in-loop"));
        diags.clear();
        scan_file(
            "crates/verify/src/certify.rs",
            "ZigzagReachability::new(&pattern)",
            &mut diags,
        );
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "batch-in-loop");
    }
}
