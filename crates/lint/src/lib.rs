//! Determinism and robustness lint over the workspace's own sources.
//!
//! The experiment harness stakes its reproducibility claims on a handful
//! of source-level invariants that the compiler cannot enforce:
//!
//! * result paths never iterate hash-ordered collections,
//! * nothing outside the metrics layer reads the host clock,
//! * protocol state machines and the certifier never panic — not via
//!   `unwrap`/`expect` in their own files (`protocol-unwrap`) and not
//!   via any call path from a protocol entry point
//!   (`panic-reachability`),
//! * sweep code derives every RNG seed from the grid position, and every
//!   seed anywhere traces to `derive_seed` or a config field
//!   (`sweep-seed`, `seed-provenance`),
//! * 1-based interval indices are never decremented without a
//!   positivity guard (`index-underflow` — the PR 5 bug class),
//! * executor arena slots never escape the round that produced them
//!   (`arena-slot-escape`).
//!
//! `rdt-lint` enforces these as deny-by-default diagnostics. Since v2 it
//! is a *syntax-aware* linter: a dependency-free lexer ([`lex`]) feeds
//! token trees and a lightweight AST ([`syntax`]) — items, functions,
//! blocks and expressions with spans, guard-dominance chains and local
//! `let` dataflow — on which the rules ([`rules`]) and the workspace
//! call graph ([`graph`]) run. No macro expansion: the workspace is
//! macro-light by construction. The whole pipeline still runs in well
//! under the 2 s CI budget. Intentional exceptions go in the
//! workspace-root `lint.allow` file, one justified entry per line; stale
//! entries fail the run so the allowlist cannot rot.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod graph;
pub mod lex;
pub mod rules;
pub mod syntax;

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

use rdt_json::Json;

pub use rules::{explain, rule_catalog, ParsedFile};

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule that fired.
    pub rule: &'static str,
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// 1-based column of the anchoring token.
    pub col: usize,
    /// The offending source line, trimmed.
    pub snippet: String,
    /// Rule-specific detail (guard analysis, call path, provenance).
    pub note: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {}",
            self.path, self.line, self.col, self.rule, self.snippet
        )?;
        if !self.note.is_empty() {
            write!(f, " — {}", self.note)?;
        }
        Ok(())
    }
}

impl Diagnostic {
    /// JSON value for `rdt-lint --json`.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("rule", Json::Str(self.rule.to_string())),
            ("path", Json::Str(self.path.clone())),
            ("line", Json::U64(self.line as u64)),
            ("col", Json::U64(self.col as u64)),
            ("snippet", Json::Str(self.snippet.clone())),
            ("note", Json::Str(self.note.clone())),
        ])
    }
}

/// Outcome of one lint run.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Findings not covered by the allowlist (must be empty to pass).
    pub diagnostics: Vec<Diagnostic>,
    /// Findings suppressed by an allowlist entry.
    pub allowed: Vec<Diagnostic>,
    /// Allowlist entries that matched nothing (also fail the run).
    pub stale_allows: Vec<String>,
    /// Files scanned.
    pub files_scanned: usize,
}

impl LintReport {
    /// `true` iff the run passes: no diagnostics, no stale entries.
    pub fn clean(&self) -> bool {
        self.diagnostics.is_empty() && self.stale_allows.is_empty()
    }

    /// Human-readable rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for diag in &self.diagnostics {
            out.push_str(&format!("{diag}\n"));
        }
        for stale in &self.stale_allows {
            out.push_str(&format!(
                "lint.allow: stale entry (matched nothing): {stale}\n"
            ));
        }
        out.push_str(&format!(
            "rdt-lint: {} file(s), {} finding(s), {} allowed, {} stale allow(s): {}\n",
            self.files_scanned,
            self.diagnostics.len(),
            self.allowed.len(),
            self.stale_allows.len(),
            if self.clean() { "clean" } else { "FAILED" },
        ));
        out
    }

    /// Machine-readable report for `--json`. `elapsed_ns` is the wall
    /// time of the run (scrubbed by the golden-fixture layer).
    pub fn to_json(&self, elapsed_ns: u64) -> Json {
        Json::obj([
            ("tool", Json::Str("rdt-lint".to_string())),
            ("files_scanned", Json::U64(self.files_scanned as u64)),
            ("clean", Json::Bool(self.clean())),
            (
                "diagnostics",
                Json::Arr(self.diagnostics.iter().map(Diagnostic::to_json).collect()),
            ),
            ("allowed", Json::U64(self.allowed.len() as u64)),
            (
                "stale_allows",
                Json::Arr(
                    self.stale_allows
                        .iter()
                        .map(|s| Json::Str(s.clone()))
                        .collect(),
                ),
            ),
            ("elapsed_ns", Json::U64(elapsed_ns)),
        ])
    }

    /// SARIF 2.1.0 report for GitHub code scanning.
    pub fn to_sarif(&self) -> Json {
        let rules: Vec<Json> = rules::CATALOG
            .iter()
            .map(|r| {
                Json::obj([
                    ("id", Json::Str(r.id.to_string())),
                    (
                        "shortDescription",
                        Json::obj([(
                            "text",
                            Json::Str(r.summary.split_whitespace().collect::<Vec<_>>().join(" ")),
                        )]),
                    ),
                    (
                        "fullDescription",
                        Json::obj([("text", Json::Str(r.explain.to_string()))]),
                    ),
                ])
            })
            .collect();
        let results: Vec<Json> = self
            .diagnostics
            .iter()
            .map(|d| {
                let message = if d.note.is_empty() {
                    d.snippet.clone()
                } else {
                    format!("{} — {}", d.snippet, d.note)
                };
                Json::obj([
                    ("ruleId", Json::Str(d.rule.to_string())),
                    ("level", Json::Str("error".to_string())),
                    ("message", Json::obj([("text", Json::Str(message))])),
                    (
                        "locations",
                        Json::Arr(vec![Json::obj([(
                            "physicalLocation",
                            Json::obj([
                                (
                                    "artifactLocation",
                                    Json::obj([("uri", Json::Str(d.path.clone()))]),
                                ),
                                (
                                    "region",
                                    Json::obj([
                                        ("startLine", Json::U64(d.line as u64)),
                                        ("startColumn", Json::U64(d.col as u64)),
                                    ]),
                                ),
                            ]),
                        )])]),
                    ),
                ])
            })
            .collect();
        Json::obj([
            (
                "$schema",
                Json::Str("https://json.schemastore.org/sarif-2.1.0.json".to_string()),
            ),
            ("version", Json::Str("2.1.0".to_string())),
            (
                "runs",
                Json::Arr(vec![Json::obj([
                    (
                        "tool",
                        Json::obj([(
                            "driver",
                            Json::obj([
                                ("name", Json::Str("rdt-lint".to_string())),
                                ("rules", Json::Arr(rules)),
                            ]),
                        )]),
                    ),
                    ("results", Json::Arr(results)),
                ])]),
            ),
        ])
    }
}

/// Blanks comments, string/char literals, and `#[cfg(test)]` items so
/// lexical consumers only see production tokens. Newlines are preserved
/// so line numbers survive. Built on the real lexer since v2, so raw
/// strings at any hash depth, nested block comments, byte strings and
/// byte literals are all blanked exactly (the pre-v2 scanner mis-blanked
/// each of those).
pub fn blank_source(source: &str) -> String {
    let bytes = source.as_bytes();
    let mut out: Vec<u8> = bytes
        .iter()
        .map(|&b| if b == b'\n' { b'\n' } else { b' ' })
        .collect();
    for tok in lex::lex(source) {
        if matches!(tok.kind, lex::TokKind::Str | lex::TokKind::Char) {
            continue;
        }
        out[tok.lo..tok.hi].copy_from_slice(&bytes[tok.lo..tok.hi]);
    }

    // Blank `#[cfg(test)]`-gated items (modules or single functions):
    // from the attribute to the end of the item's brace block. Safe on
    // the token-blanked text — strings and comments are gone.
    let text = String::from_utf8_lossy(&out).into_owned();
    let mut out = text.clone().into_bytes();
    let mut search_from = 0;
    while let Some(found) = text[search_from..].find("#[cfg(test)]") {
        let attr_at = search_from + found;
        let Some(open_rel) = text[attr_at..].find('{') else {
            break;
        };
        let mut depth = 0usize;
        let mut end = text.len();
        for (offset, b) in text[attr_at + open_rel..].bytes().enumerate() {
            match b {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        end = attr_at + open_rel + offset + 1;
                        break;
                    }
                }
                _ => {}
            }
        }
        for b in &mut out[attr_at..end] {
            if *b != b'\n' {
                *b = b' ';
            }
        }
        search_from = end;
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Parses one source text and runs every per-file rule on it. Used by
/// the fixture corpus tests; [`run_lint`] adds the whole-workspace
/// call-graph rule on top.
pub fn scan_source(path: &str, source: &str, diagnostics: &mut Vec<Diagnostic>) {
    let parsed = ParsedFile::parse(path, source);
    rules::check_file(&parsed, diagnostics);
}

/// Collects every `.rs` file under `root`, skipping `target`,
/// dot-directories and `fixtures` corpora (known-bad lint inputs), in
/// sorted (deterministic) order.
fn collect_sources(root: &Path) -> Result<Vec<PathBuf>, String> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let entries =
            fs::read_dir(&dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("{e}"))?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name != "target" && name != "fixtures" && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Parses `lint.allow`: one `rule-id path` pair per line, `#` comments.
fn parse_allowlist(text: &str) -> Result<Vec<(String, String)>, String> {
    let mut out = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        match (parts.next(), parts.next(), parts.next()) {
            (Some(rule), Some(path), None) => out.push((rule.to_string(), path.to_string())),
            _ => {
                return Err(format!(
                    "lint.allow:{}: expected \"rule-id path\", got {raw:?}",
                    lineno + 1
                ))
            }
        }
    }
    Ok(out)
}

/// Canonicalizes `root` and checks it is a Cargo workspace root.
///
/// # Errors
///
/// Returns a message naming the path when it does not exist or does not
/// hold a `Cargo.toml` with a `[workspace]` table — a wrong `--root`
/// must fail loudly instead of linting zero files and exiting green.
pub fn validate_root(root: &Path) -> Result<PathBuf, String> {
    let canonical = root
        .canonicalize()
        .map_err(|e| format!("--root {}: {e}", root.display()))?;
    let manifest = canonical.join("Cargo.toml");
    let text = fs::read_to_string(&manifest).map_err(|e| {
        format!(
            "--root {} is not a workspace root: {e}",
            canonical.display()
        )
    })?;
    if !text.contains("[workspace]") {
        return Err(format!(
            "--root {}: Cargo.toml has no [workspace] table",
            canonical.display()
        ));
    }
    Ok(canonical)
}

/// Runs the lint over the workspace rooted at `root`: per-file rules on
/// every source, then the whole-workspace call-graph analysis, then the
/// allowlist.
///
/// # Errors
///
/// Returns a message if `root` is not a workspace root or sources or
/// the allowlist cannot be read.
pub fn run_lint(root: &Path) -> Result<LintReport, String> {
    let root = validate_root(root)?;
    let mut report = LintReport::default();
    let mut parsed = Vec::new();
    for path in collect_sources(&root)? {
        let rel = path
            .strip_prefix(&root)
            .map_err(|_| format!("{} escapes the root", path.display()))?
            .to_string_lossy()
            .replace('\\', "/");
        let source = fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        report.files_scanned += 1;
        parsed.push(ParsedFile::parse(&rel, &source));
    }
    let mut diagnostics = Vec::new();
    for pf in &parsed {
        rules::check_file(pf, &mut diagnostics);
    }
    graph::panic_reachability(&parsed, &mut diagnostics);
    diagnostics
        .sort_by(|a, b| (&a.path, a.line, a.col, a.rule).cmp(&(&b.path, b.line, b.col, b.rule)));

    let allow_path = root.join("lint.allow");
    let allows = if allow_path.exists() {
        let text = fs::read_to_string(&allow_path).map_err(|e| format!("lint.allow: {e}"))?;
        parse_allowlist(&text)?
    } else {
        Vec::new()
    };
    let mut allow_hits: BTreeMap<usize, usize> = BTreeMap::new();
    for diag in diagnostics {
        let hit = allows
            .iter()
            .position(|(rule, path)| *rule == diag.rule && *path == diag.path);
        match hit {
            Some(index) => {
                *allow_hits.entry(index).or_insert(0) += 1;
                report.allowed.push(diag);
            }
            None => report.diagnostics.push(diag),
        }
    }
    for (index, (rule, path)) in allows.iter().enumerate() {
        if !allow_hits.contains_key(&index) {
            report.stale_allows.push(format!("{rule} {path}"));
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan_file(path: &str, source: &str, diags: &mut Vec<Diagnostic>) {
        scan_source(path, source, diags);
    }

    #[test]
    fn blanking_strips_comments_strings_and_tests() {
        let source = r##"
// HashMap in a comment
fn f() {
    let s = "HashMap in a string";
    let r = r#"HashMap raw"#;
    let c = '"';
}
#[cfg(test)]
mod tests {
    use std::collections::HashMap; // real, but test-only
}
"##;
        let blanked = blank_source(source);
        assert!(!blanked.contains("HashMap"), "{blanked}");
        assert_eq!(blanked.lines().count(), source.lines().count());
    }

    #[test]
    fn blanking_handles_raw_strings_at_depth() {
        // Pre-v2 gap: `r##"…"##` closed early at the first `"#`.
        let source = "let a = r##\"HashMap \"# still inside\"##; let keep = 1;";
        let blanked = blank_source(source);
        assert!(!blanked.contains("HashMap"), "{blanked}");
        assert!(blanked.contains("keep"), "{blanked}");
    }

    #[test]
    fn blanking_handles_nested_block_comments() {
        let source = "/* outer /* HashMap inner */ tail HashMap */ let keep = 1;";
        let blanked = blank_source(source);
        assert!(!blanked.contains("HashMap"), "{blanked}");
        assert!(blanked.contains("keep"), "{blanked}");
    }

    #[test]
    fn blanking_handles_byte_strings_and_identifier_r_prefix() {
        // Pre-v2 gaps: `b"…"`/`br"…"` mis-lexed, and an identifier
        // ending in `r` before a string started a phantom raw string.
        let source = "let a = b\"HashMap\"; let b = br#\"HashMap\"#; let xr = 1; let s = \"HashMap\"; let keep = xr;";
        let blanked = blank_source(source);
        assert!(!blanked.contains("HashMap"), "{blanked}");
        assert!(blanked.contains("keep"), "{blanked}");
        assert!(blanked.contains("xr"), "{blanked}");
    }

    #[test]
    fn ident_needles_respect_token_boundaries() {
        let mut diags = Vec::new();
        scan_file(
            "crates/core/src/x.rs",
            "type MyHashMapLike = (); use std::collections::HashMap;",
            &mut diags,
        );
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "hash-collections");
    }

    #[test]
    fn rules_scope_by_path() {
        let mut diags = Vec::new();
        // workloads is not a result path: HashMap allowed there.
        scan_file("crates/workloads/src/x.rs", "HashMap", &mut diags);
        assert!(diags.is_empty());
        // metrics.rs may read the clock; its siblings may not.
        scan_file("crates/sim/src/metrics.rs", "Instant::now()", &mut diags);
        assert!(diags.is_empty());
        scan_file("crates/sim/src/engine.rs", "Instant::now()", &mut diags);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "wall-clock");
    }

    #[test]
    fn unwrap_rule_hits_protocol_code_only() {
        let mut diags = Vec::new();
        scan_file("crates/core/src/bhmr.rs", "x.unwrap();", &mut diags);
        scan_file("crates/bench/src/parallel.rs", "x.unwrap();", &mut diags);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].path, "crates/core/src/bhmr.rs");
    }

    #[test]
    fn allowlist_parses_and_rejects_garbage() {
        let allows = parse_allowlist("# comment\nwall-clock src/x.rs # reason\n\n").unwrap();
        assert_eq!(allows, vec![("wall-clock".into(), "src/x.rs".into())]);
        assert!(parse_allowlist("too many fields here").is_err());
    }

    #[test]
    fn catalog_is_nonempty_and_unique() {
        let catalog = rule_catalog();
        assert_eq!(catalog.len(), 10);
        let mut ids: Vec<_> = catalog.iter().map(|(id, _)| id).collect();
        ids.dedup();
        assert_eq!(ids.len(), 10);
        assert!(explain("index-underflow").is_some());
        assert!(explain("no-such-rule").is_none());
    }

    #[test]
    fn root_validation_rejects_non_workspace_paths() {
        assert!(validate_root(Path::new("/definitely/not/here")).is_err());
        // /tmp exists but has no workspace manifest.
        let err = validate_root(Path::new("/tmp")).unwrap_err();
        assert!(err.contains("workspace"), "{err}");
    }

    #[test]
    fn alloc_rule_fires_only_inside_step_bodies() {
        // Allocation is fine in setup code (constructors, Drop, tests);
        // the rule bites only inside before_send / on_message_arrival.
        let source = "\
impl ExecutorState {
    fn new(n: usize) -> Self { let v = Vec::new(); Self { v } }
    fn before_send(&mut self, dest: ProcessId) -> SendOutcome<P> {
        let copy = self.tdv.to_vec();
        SendOutcome { piggyback: copy.clone() }
    }
    fn on_message_arrival(&mut self, s: ProcessId, p: &P) -> ArrivalOutcome {
        if p.fresh { self.scratch = Vec::new(); }
        ArrivalOutcome::None
    }
    fn before_send_raw(&mut self) { let _ = Vec::new(); }
}
";
        let mut diags = Vec::new();
        scan_file("crates/core/src/executor.rs", source, &mut diags);
        let alloc: Vec<_> = diags.iter().filter(|d| d.rule == "alloc-in-step").collect();
        assert_eq!(alloc.len(), 3, "{alloc:?}");
        assert!(alloc.iter().all(|d| (4..=9).contains(&d.line)), "{alloc:?}");
        // The legacy oracle implementations stay out of scope.
        diags.clear();
        scan_file("crates/core/src/bhmr.rs", source, &mut diags);
        assert!(!diags.iter().any(|d| d.rule == "alloc-in-step"));
    }

    #[test]
    fn batch_constructor_rule_hits_per_event_code_only() {
        let mut diags = Vec::new();
        // The bench crate compares batch vs incremental on purpose.
        scan_file(
            "crates/bench/src/experiment.rs",
            "RdtChecker::new(&pattern).check();",
            &mut diags,
        );
        assert!(diags.is_empty());
        scan_file(
            "crates/sim/src/runner.rs",
            "let a = RdtChecker::new(&pattern); let b = PatternAnalysis::new(&p);",
            &mut diags,
        );
        assert_eq!(diags.len(), 2);
        assert!(diags.iter().all(|d| d.rule == "batch-in-loop"));
        diags.clear();
        scan_file(
            "crates/verify/src/certify.rs",
            "ZigzagReachability::new(&pattern)",
            &mut diags,
        );
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "batch-in-loop");
    }

    #[test]
    fn json_and_sarif_render() {
        let report = LintReport {
            diagnostics: vec![Diagnostic {
                rule: "index-underflow",
                path: "crates/x/src/a.rs".into(),
                line: 3,
                col: 7,
                snippet: "line.set(p, deliver.index - 1);".into(),
                note: "`deliver.index` may be 0 here".into(),
            }],
            allowed: vec![],
            stale_allows: vec![],
            files_scanned: 1,
        };
        let json = report.to_json(12345);
        assert_eq!(json.get("clean").and_then(Json::as_bool), Some(false));
        assert_eq!(
            json.get("diagnostics")
                .and_then(Json::as_array)
                .map(|a| a.len()),
            Some(1)
        );
        let sarif = report.to_sarif();
        assert_eq!(sarif.get("version").and_then(Json::as_str), Some("2.1.0"));
        let text = sarif.pretty();
        assert!(text.contains("index-underflow"));
        assert!(text.contains("startLine"));
        // Round-trips through the in-workspace parser.
        assert!(Json::parse(&text).is_ok());
    }
}
