//! The rule catalog (`rdt-lint --rules`) and the tables in
//! `docs/VERIFICATION.md` must describe the same rules — this test
//! fails when either side drifts.

#[test]
fn verification_doc_tables_match_the_catalog() {
    let doc_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../docs/VERIFICATION.md");
    let full = std::fs::read_to_string(doc_path).expect("docs/VERIFICATION.md");
    // Only the lint chapter's rule tables count — the certifier chapter
    // has backticked tables of its own.
    let start = full.find("### Rule catalog").expect("rule catalog section");
    let end = full[start..]
        .find("### Fixture corpus")
        .map_or(full.len(), |o| start + o);
    let doc = &full[start..end];

    // Rule ids are the first backticked cell of each table row.
    let mut documented = Vec::new();
    for line in doc.lines() {
        let Some(rest) = line.strip_prefix("| `") else {
            continue;
        };
        let Some(id) = rest.split('`').next() else {
            continue;
        };
        if rdt_lint::explain(id).is_some() {
            documented.push(id.to_string());
        }
    }

    let catalog: Vec<String> = rdt_lint::rule_catalog()
        .iter()
        .map(|(id, _)| id.to_string())
        .collect();
    for id in &catalog {
        assert!(
            documented.contains(id),
            "rule `{id}` is in the catalog but missing from docs/VERIFICATION.md"
        );
    }
    assert_eq!(
        documented.len(),
        catalog.len(),
        "docs tables list {documented:?}, catalog is {catalog:?}"
    );

    // Every documented rule id must also be explainable (catches table
    // rows whose backticked cell is a stale id — explain() gated the
    // collection above, so a stale id shows up as a count mismatch,
    // and a renamed rule as a missing one).
    let rows_with_backtick = doc
        .lines()
        .filter(|l| l.starts_with("| `") && !l.contains("rule id"))
        .count();
    assert_eq!(
        rows_with_backtick,
        catalog.len(),
        "a table row's rule id is not in the catalog"
    );
}
