//! Known-clean: ordered collection on a result path.
use std::collections::BTreeMap;

pub fn tally(events: &[u32]) -> Vec<(u32, usize)> {
    let mut counts: BTreeMap<u32, usize> = BTreeMap::new();
    for &e in events {
        *counts.entry(e).or_insert(0) += 1;
    }
    counts.into_iter().collect()
}
