//! Known-bad: hash-ordered collection on a result path.
use std::collections::HashMap;

pub fn tally(events: &[u32]) -> Vec<(u32, usize)> {
    let mut counts: HashMap<u32, usize> = HashMap::new();
    for &e in events {
        *counts.entry(e).or_insert(0) += 1;
    }
    counts.into_iter().collect()
}
