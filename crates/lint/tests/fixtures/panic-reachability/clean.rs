//! Known-clean: the fallible case is routed out with `?`.
pub fn try_recovery_line(pattern: &Pattern) -> Option<Line> {
    descend(pattern)
}

fn descend(pattern: &Pattern) -> Option<Line> {
    let line = pattern.initial_line()?;
    Some(line)
}
