//! Known-bad: panic sites below the *work-unit* entry points of the
//! orbit-pruned enumeration pipeline. `split_budget` is reachable only
//! from the producer (`enumerate_units`) and `load_line` only from the
//! worker (`OrbitContext::run_unit`); the call graph must reach both and
//! name each witness path — a panic on either side kills a distributed
//! certification run.
pub(crate) fn enumerate_units(scope: &Scope) -> Vec<WorkUnit> {
    let mut units = Vec::new();
    for sends in 0..=scope.messages {
        units.push(split_budget(scope, sends));
    }
    units
}

impl OrbitContext {
    pub(crate) fn run_unit(&self, unit: &WorkUnit) -> u64 {
        load_line(&self.scope, unit)
    }
}

fn split_budget(scope: &Scope, sends: usize) -> WorkUnit {
    if sends > scope.messages {
        panic!("work unit overruns the send budget");
    }
    WorkUnit {
        total_sends: sends,
        line0: Vec::new(),
    }
}

fn load_line(scope: &Scope, unit: &WorkUnit) -> u64 {
    if unit.line0.len() > scope.messages {
        unreachable!("unit first line exceeds the scope");
    }
    unit.total_sends as u64
}
