//! Known-bad: a panic site two calls below a protocol entry point.
//! `descend` is outside the lexically-scoped `protocol-unwrap` files,
//! but the call graph reaches it from `try_recovery_line`.
pub fn try_recovery_line(pattern: &Pattern) -> Option<Line> {
    descend(pattern)
}

fn descend(pattern: &Pattern) -> Option<Line> {
    let line = pattern.initial_line().unwrap();
    Some(line)
}
