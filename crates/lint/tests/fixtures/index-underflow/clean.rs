//! Known-clean: the decrement is dominated by a positivity guard.
pub fn descend(line: &mut GlobalCheckpoint, deliver: IntervalId) {
    if deliver.index > 0 {
        line.set(deliver.process, deliver.index - 1);
    }
}
