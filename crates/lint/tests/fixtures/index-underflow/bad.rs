//! Known-bad: the PR 5 recovery-line bug shape. Interval indices are
//! 1-based, so `deliver.index - 1` underflows when the message was
//! delivered in the first interval.
pub fn descend(line: &mut GlobalCheckpoint, deliver: IntervalId) {
    line.set(deliver.process, deliver.index - 1);
}
