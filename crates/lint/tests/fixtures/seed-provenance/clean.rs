//! Known-clean: the seed traces to a config field through a local.
pub fn make_rng(config: &SimConfig) -> SimRng {
    let seed = config.seed;
    SimRng::seed(seed)
}
