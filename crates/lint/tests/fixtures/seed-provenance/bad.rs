//! Known-bad: a literal RNG seed bakes one execution into the results.
pub fn make_rng() -> SimRng {
    SimRng::seed(42)
}
