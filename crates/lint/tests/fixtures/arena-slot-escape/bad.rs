//! Known-bad: an arena slot offset stored past the round that owns it.
impl Recorder {
    fn record(&mut self, pb: &PackedPiggyback) {
        self.kept.push(pb.slot);
    }
}
