//! Known-clean: the row data is copied out before the slot recycles.
impl Recorder {
    fn record(&mut self, pb: &PackedPiggyback) {
        let decoded = pb.decode_tdv();
        self.kept.push(decoded);
    }
}
