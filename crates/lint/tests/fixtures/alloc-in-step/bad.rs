//! Known-bad: heap allocation inside an executor step body.
impl ExecutorState {
    fn before_send(&mut self, dest: ProcessId) -> SendOutcome {
        let copy = self.tdv.to_vec();
        SendOutcome { piggyback: copy }
    }
}
