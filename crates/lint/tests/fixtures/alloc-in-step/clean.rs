//! Known-clean: the step writes into the recycled scratch arena.
impl ExecutorState {
    fn before_send(&mut self, dest: ProcessId) -> SendOutcome {
        self.scratch.copy_from_slice(&self.tdv);
        SendOutcome { slot: self.scratch_slot }
    }
}
