//! Known-bad: host clock read outside the metrics layer.
use std::time::Instant;

pub fn run_step(work: impl FnOnce()) -> u128 {
    let start = Instant::now();
    work();
    start.elapsed().as_nanos()
}
