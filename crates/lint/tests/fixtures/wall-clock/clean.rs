//! Known-clean: timing routed through the simulated clock.
pub fn run_step(now_ns: u64, work: impl FnOnce()) -> u64 {
    work();
    now_ns
}
