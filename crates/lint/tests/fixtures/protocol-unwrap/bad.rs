//! Known-bad: unwrap in certifier state-machine code.
pub fn decode_op(raw: &str) -> u32 {
    raw.parse().unwrap()
}
