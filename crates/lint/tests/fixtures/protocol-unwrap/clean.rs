//! Known-clean: the certifier propagates malformed input as an error.
pub fn decode_op(raw: &str) -> Result<u32, String> {
    raw.parse().map_err(|e| format!("bad op {raw:?}: {e}"))
}
