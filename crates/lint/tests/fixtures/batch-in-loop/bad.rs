//! Known-bad: batch analysis constructor inside per-event code.
pub fn on_event(pattern: &Pattern) -> bool {
    let checker = RdtChecker::new(pattern);
    checker.holds()
}
