//! Known-clean: one incremental analysis, events appended.
pub fn on_event(analysis: &mut IncrementalAnalysis, op: Op) -> bool {
    analysis.append(op);
    analysis.holds()
}
