//! Known-bad: ad-hoc RNG seeding inside sweep code. The seed value
//! itself has clean provenance (a config field) — the offence is the
//! direct `SimRng::seed` call instead of deriving from the grid point.
pub fn sweep_point(cfg: &SweepConfig) -> SimRng {
    SimRng::seed(cfg.base_seed)
}
