//! Known-clean: per-point seeds derived from the grid position.
pub fn sweep_point(base: &SimRng, row: u64, col: u64) -> SimRng {
    base.derive_seed(row * 1000 + col)
}
