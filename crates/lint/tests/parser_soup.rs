//! The lexer, parser, blanker and rule engine are *total*: no input —
//! however malformed, unbalanced, or mid-UTF-8-exotic — may panic them.
//! Random token soup (with raw-string openers, stray delimiters and
//! multi-byte characters deliberately over-represented) exercises that.

use proptest::prelude::*;

/// Alphabet skewed toward the constructs the lexer finds hardest:
/// unterminated raw strings, nested comment openers, byte-string
/// prefixes, lone quotes, unbalanced delimiters, multi-byte characters.
const ALPHABET: &[&str] = &[
    "fn",
    "impl",
    "let",
    "if",
    "else",
    "while",
    "for",
    "in",
    "match",
    "return",
    "self",
    "x",
    "deliver",
    "index",
    "_iv",
    "seed",
    "SimRng",
    "unwrap",
    "assert",
    "0",
    "1",
    "42",
    "0x_f",
    "1.5e3",
    "1..",
    "'a",
    "'a'",
    "'\\''",
    "b'x'",
    "\"",
    "\"str\"",
    "r\"",
    "r#\"",
    "r##\"raw\"##",
    "\"#",
    "b\"bytes\"",
    "br#\"",
    "xr",
    "//",
    "/*",
    "*/",
    "/* /* */",
    "#[cfg(test)]",
    "#[test]",
    "(",
    ")",
    "[",
    "]",
    "{",
    "}",
    "::",
    ".",
    ",",
    ";",
    "->",
    "=>",
    "=",
    "==",
    "-",
    "!",
    "é",
    "λ",
    "🦀",
    "привет",
    "\u{2028}",
    "\\",
    "\0",
    " ",
    "\n",
    "\t",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    fn token_soup_never_panics_the_pipeline(
        picks in proptest::collection::vec(0usize..ALPHABET.len(), 0..120),
        glue in proptest::collection::vec(any::<bool>(), 0..120),
    ) {
        let mut src = String::new();
        for (k, &p) in picks.iter().enumerate() {
            src.push_str(ALPHABET[p]);
            if glue.get(k).copied().unwrap_or(true) {
                src.push(' ');
            }
        }
        // Lex → parse → blank must all be total…
        let toks = rdt_lint::lex::lex(&src);
        for t in &toks {
            prop_assert!(src.is_char_boundary(t.lo) && src.is_char_boundary(t.hi));
        }
        let blanked = rdt_lint::blank_source(&src);
        prop_assert_eq!(blanked.lines().count(), src.lines().count());
        // …and so must every rule, under the hottest scan paths.
        let mut diags = Vec::new();
        for path in [
            "crates/core/src/executor.rs",
            "crates/sim/src/fixture.rs",
            "crates/bench/src/fixture.rs",
            "crates/recovery/src/fixture.rs",
        ] {
            rdt_lint::scan_source(path, &src, &mut diags);
        }
    }
}
