//! Fixture corpus: one known-bad and one known-clean snippet per rule
//! under `tests/fixtures/<rule>/{bad,clean}.rs`. Every bad fixture must
//! fire *exactly* its own rule (cross-rule contamination would mean the
//! path scopes or patterns drifted), and every clean fixture must be
//! silent under the same scan path.

use rdt_lint::{Diagnostic, ParsedFile};

/// Rule → the workspace-relative path the fixture is scanned under. The
/// path picks which scopes apply; each is chosen so only the rule under
/// test can fire on its fixture pair.
const CORPUS: &[(&str, &str)] = &[
    ("hash-collections", "crates/rgraph/src/fixture.rs"),
    ("wall-clock", "crates/causality/src/fixture.rs"),
    ("protocol-unwrap", "crates/verify/src/fixture.rs"),
    ("batch-in-loop", "crates/sim/src/fixture.rs"),
    ("sweep-seed", "crates/bench/src/fixture.rs"),
    ("alloc-in-step", "crates/sim/src/fixture.rs"),
    ("index-underflow", "crates/recovery/src/line.rs"),
    ("seed-provenance", "crates/sim/src/fixture.rs"),
    ("panic-reachability", "crates/recovery/src/fixture.rs"),
    ("arena-slot-escape", "crates/sim/src/fixture.rs"),
];

fn fixture(rule: &str, which: &str) -> String {
    let path = format!(
        "{}/tests/fixtures/{rule}/{which}.rs",
        env!("CARGO_MANIFEST_DIR")
    );
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"))
}

/// Scans one source the way `run_lint` would: per-file rules plus the
/// workspace call-graph pass (here the "workspace" is the one file).
fn scan(path: &str, src: &str) -> Vec<Diagnostic> {
    let parsed = ParsedFile::parse(path, src);
    let mut diags = Vec::new();
    rdt_lint::rules::check_file(&parsed, &mut diags);
    rdt_lint::graph::panic_reachability(std::slice::from_ref(&parsed), &mut diags);
    diags
}

#[test]
fn every_bad_fixture_fires_exactly_its_rule() {
    for &(rule, path) in CORPUS {
        let diags = scan(path, &fixture(rule, "bad"));
        assert!(!diags.is_empty(), "{rule}: bad fixture fired nothing");
        for d in &diags {
            assert_eq!(
                d.rule, rule,
                "{rule}: bad fixture also fired {} at {}:{}",
                d.rule, d.line, d.col
            );
        }
    }
}

#[test]
fn every_clean_fixture_is_silent() {
    for &(rule, path) in CORPUS {
        let diags = scan(path, &fixture(rule, "clean"));
        assert!(
            diags.is_empty(),
            "{rule}: clean fixture fired {:?}",
            diags
                .iter()
                .map(|d| format!("{} at {}:{}", d.rule, d.line, d.col))
                .collect::<Vec<_>>()
        );
    }
}

#[test]
fn pr5_underflow_fixture_has_one_finding_with_exact_span() {
    let src = fixture("index-underflow", "bad");
    let diags = scan("crates/recovery/src/line.rs", &src);
    assert_eq!(diags.len(), 1, "{diags:?}");
    let d = &diags[0];
    assert_eq!(d.rule, "index-underflow");
    // The diagnostic anchors at the `-` of `deliver.index - 1`.
    let (lineno, line) = src
        .lines()
        .enumerate()
        .find(|(_, l)| l.contains("line.set("))
        .expect("fixture shape");
    assert_eq!(d.line, lineno + 1);
    let minus_col = line.find(" - ").expect("fixture shape") + 2;
    assert_eq!(d.col, minus_col);
    assert!(d.snippet.contains("deliver.index - 1"), "{d:?}");
    assert!(d.note.contains("deliver.index"), "{d:?}");
}

#[test]
fn literal_seed_fixture_has_one_finding_with_exact_span() {
    let src = fixture("seed-provenance", "bad");
    let diags = scan("crates/sim/src/fixture.rs", &src);
    assert_eq!(diags.len(), 1, "{diags:?}");
    let d = &diags[0];
    assert_eq!(d.rule, "seed-provenance");
    // The diagnostic anchors at the `SimRng` of `SimRng::seed(42)`.
    let (lineno, line) = src
        .lines()
        .enumerate()
        .find(|(_, l)| l.contains("SimRng::seed(42)"))
        .expect("fixture shape");
    assert_eq!(d.line, lineno + 1);
    assert_eq!(d.col, line.find("SimRng").expect("fixture shape") + 1);
    assert!(d.note.contains("literal seed `42`"), "{d:?}");
}

#[test]
fn panic_reachability_witness_names_the_call_path() {
    let diags = scan(
        "crates/recovery/src/fixture.rs",
        &fixture("panic-reachability", "bad"),
    );
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert!(
        diags[0].note.contains("try_recovery_line → descend"),
        "{:?}",
        diags[0]
    );
}

/// The orbit-pruned certifier's work-unit pipeline is covered by the
/// call-graph pass: both the producer (`enumerate_units`) and the
/// worker (`OrbitContext::run_unit`) entry points reach their own panic
/// site through a helper, and each witness path names its entry.
#[test]
fn panic_reachability_covers_the_work_unit_entry_points() {
    let diags = scan(
        "crates/verify/src/fixture.rs",
        &fixture("panic-reachability", "workunit"),
    );
    assert_eq!(diags.len(), 2, "{diags:?}");
    for d in &diags {
        assert_eq!(d.rule, "panic-reachability", "{d:?}");
    }
    assert!(
        diags
            .iter()
            .any(|d| d.note.contains("enumerate_units → split_budget")),
        "{diags:?}"
    );
    assert!(
        diags
            .iter()
            .any(|d| d.note.contains("run_unit → load_line")),
        "{diags:?}"
    );
}

#[test]
fn corpus_covers_the_whole_catalog() {
    let ids: Vec<&str> = rdt_lint::rule_catalog().iter().map(|(id, _)| *id).collect();
    let covered: Vec<&str> = CORPUS.iter().map(|(rule, _)| *rule).collect();
    assert_eq!(ids, covered, "fixture corpus out of sync with the catalog");
}
