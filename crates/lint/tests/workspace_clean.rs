//! The workspace must pass its own lint — this is the same check CI's
//! `lint` job runs via the `rdt-lint` binary.

use std::path::PathBuf;

#[test]
fn workspace_passes_rdt_lint() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = rdt_lint::run_lint(&root).expect("lint run");
    assert!(
        report.files_scanned > 50,
        "scanned only {}",
        report.files_scanned
    );
    assert!(report.clean(), "\n{}", report.render());
}
