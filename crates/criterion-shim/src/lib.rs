//! Minimal, dependency-free benchmark harness with the `criterion` API
//! surface the workspace's benches use.
//!
//! The build container has no crates.io access, so the real `criterion`
//! cannot be compiled; this shim keeps every bench target compiling and
//! runnable. Measurement is deliberately simple: a short warm-up, then
//! timed batches until a fixed measurement budget is spent, reporting the
//! median per-iteration time. It is good enough to spot order-of-magnitude
//! regressions; swap the real criterion back in for publication-grade
//! statistics.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A `name/parameter` id.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Runs closures under measurement; see [`Bencher::iter`].
pub struct Bencher {
    /// Collected per-iteration samples (nanoseconds).
    samples: Vec<f64>,
}

impl Bencher {
    /// Times `routine`, collecting per-iteration samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run for ~20ms or at least one iteration.
        let warmup_budget = Duration::from_millis(20);
        let warmup_start = Instant::now();
        let mut warmup_iters: u64 = 0;
        while warmup_start.elapsed() < warmup_budget || warmup_iters == 0 {
            std_black_box(routine());
            warmup_iters += 1;
        }
        let per_iter = warmup_start.elapsed().as_secs_f64() / warmup_iters as f64;
        // Pick a batch size so one batch lasts roughly 5ms.
        let batch = ((0.005 / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);
        let budget = Duration::from_millis(150);
        let start = Instant::now();
        while start.elapsed() < budget {
            let batch_start = Instant::now();
            for _ in 0..batch {
                std_black_box(routine());
            }
            let nanos = batch_start.elapsed().as_nanos() as f64 / batch as f64;
            self.samples.push(nanos);
        }
    }
}

fn human(nanos: f64) -> String {
    if nanos < 1_000.0 {
        format!("{nanos:.1} ns")
    } else if nanos < 1_000_000.0 {
        format!("{:.2} µs", nanos / 1_000.0)
    } else if nanos < 1_000_000_000.0 {
        format!("{:.2} ms", nanos / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos / 1_000_000_000.0)
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    fn run_one(&mut self, label: &str, f: impl FnOnce(&mut Bencher)) {
        let mut bencher = Bencher {
            samples: Vec::new(),
        };
        f(&mut bencher);
        let mut samples = bencher.samples;
        if samples.is_empty() {
            println!("{}/{label}: no samples", self.name);
            return;
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let median = samples[samples.len() / 2];
        let lo = samples[samples.len() / 10];
        let hi = samples[samples.len() - 1 - samples.len() / 10];
        println!(
            "{}/{label}: median {} (p10 {}, p90 {}, {} batches)",
            self.name,
            human(median),
            human(lo),
            human(hi),
            samples.len()
        );
    }

    /// Benchmarks `routine` with an explicit input value.
    pub fn bench_with_input<I: ?Sized, R>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        routine: R,
    ) -> &mut Self
    where
        R: FnOnce(&mut Bencher, &I),
    {
        let label = id.label.clone();
        self.run_one(&label, |b| routine(b, input));
        self
    }

    /// Benchmarks a closure under a plain label.
    pub fn bench_function<R: FnOnce(&mut Bencher)>(
        &mut self,
        label: impl Display,
        routine: R,
    ) -> &mut Self {
        self.run_one(&label.to_string(), routine);
        self
    }

    /// Ends the group (printing happens per-benchmark; nothing to flush).
    pub fn finish(self) {}
}

/// The harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            _criterion: self,
        }
    }

    /// Accepted for API compatibility; the shim has no sampling knobs.
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    /// Parses command-line arguments (accepted and ignored: the shim runs
    /// every benchmark unconditionally).
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// Declares a group of benchmark functions, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, as in criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.bench_with_input(BenchmarkId::new("square", 7), &7u64, |b, &n| {
            b.iter(|| black_box(n * n));
        });
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs_and_reports() {
        benches();
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("a", 3).label, "a/3");
        assert_eq!(BenchmarkId::from_parameter("bhmr").label, "bhmr");
    }

    #[test]
    fn human_units() {
        assert!(human(12.0).ends_with("ns"));
        assert!(human(12_000.0).ends_with("µs"));
        assert!(human(12_000_000.0).ends_with("ms"));
    }
}
