//! Fuzzing the daemon's ingest path: arbitrary bytes and mutated valid
//! frames must never panic anywhere between the socket and the engines —
//! they come back as structured error replies, and the streams that were
//! already open keep answering correctly afterwards.

use std::collections::BTreeMap;

use proptest::prelude::*;
use rdt_json::Json;
use rdt_serve::{handle_request, ok_reply, parse_request, StreamEngine};

struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed | 1)
    }

    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() as usize) % n.max(1)
    }
}

/// A pool of syntactically valid frames to mutate.
fn valid_frames() -> Vec<String> {
    vec![
        r#"{"op":"open","stream":"s","processes":3}"#.to_string(),
        r#"{"op":"event","stream":"s","type":"checkpoint","process":0}"#.to_string(),
        r#"{"op":"event","stream":"s","type":"send","from":0,"to":1}"#.to_string(),
        r#"{"op":"event","stream":"s","type":"deliver","message":0}"#.to_string(),
        r#"{"op":"event","stream":"s","type":"crash","process":2}"#.to_string(),
        r#"{"op":"query","stream":"s","what":"untrackable"}"#.to_string(),
        r#"{"op":"query","stream":"s","what":"recovery-line"}"#.to_string(),
        r#"{"op":"query","stream":"s","what":"min-consistent","members":[[0,1],[1,0]]}"#
            .to_string(),
        r#"{"op":"query","stream":"s","what":"max-consistent","members":[[2,0]]}"#.to_string(),
        r#"{"op":"compact","stream":"s"}"#.to_string(),
        r#"{"op":"close","stream":"s"}"#.to_string(),
        r#"{"op":"streams"}"#.to_string(),
        r#"{"op":"ping"}"#.to_string(),
        "\"\\ud83d\\ude00 high/low surrogates\"".to_string(),
    ]
}

fn random_bytes(rng: &mut Rng, len: usize) -> Vec<u8> {
    (0..len).map(|_| (rng.next() & 0xff) as u8).collect()
}

/// Mutates a valid frame: flip a byte, truncate, duplicate a span, or
/// splice two frames together.
fn mutate(rng: &mut Rng, frames: &[String]) -> Vec<u8> {
    let mut bytes = frames[rng.below(frames.len())].clone().into_bytes();
    match rng.below(4) {
        0 => {
            if !bytes.is_empty() {
                let i = rng.below(bytes.len());
                bytes[i] = (rng.next() & 0xff) as u8;
            }
        }
        1 => bytes.truncate(rng.below(bytes.len() + 1)),
        2 => {
            let other = frames[rng.below(frames.len())].as_bytes();
            let cut = rng.below(bytes.len() + 1);
            let splice = rng.below(other.len() + 1);
            bytes.truncate(cut);
            bytes.extend_from_slice(&other[splice..]);
        }
        _ => {
            if !bytes.is_empty() {
                let i = rng.below(bytes.len());
                let j = i + rng.below(bytes.len() - i);
                let span = bytes[i..j].to_vec();
                bytes.extend_from_slice(&span);
            }
        }
    }
    bytes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Raw byte soup: `Json::parse_bytes` and `parse_request` are total.
    #[test]
    fn byte_soup_never_panics(seed in any::<u64>()) {
        let mut rng = Rng::new(seed);
        for _ in 0..200 {
            let len = rng.below(64);
            let bytes = random_bytes(&mut rng, len);
            let _ = Json::parse_bytes(&bytes);
            let _ = parse_request(&bytes);
        }
    }

    /// Mutated valid frames: parsing stays total, and feeding every
    /// parse that *succeeds* into a live shard never panics and never
    /// corrupts a healthy co-tenant stream.
    #[test]
    fn mutated_streams_never_panic_or_corrupt(seed in any::<u64>()) {
        let mut rng = Rng::new(seed);
        let frames = valid_frames();

        let mut streams: BTreeMap<String, StreamEngine> = BTreeMap::new();
        // A healthy co-tenant whose state must survive the storm.
        let healthy = parse_request(
            br#"{"op":"open","stream":"healthy","processes":2}"#
        ).expect("valid open");
        handle_request(&mut streams, &healthy);
        let cp = parse_request(
            br#"{"op":"event","stream":"healthy","type":"checkpoint","process":0}"#
        ).expect("valid event");
        handle_request(&mut streams, &cp);

        for _ in 0..300 {
            let bytes = mutate(&mut rng, &frames);
            if let Ok(req) = parse_request(&bytes) {
                // Daemon-scoped requests are server-side; shard-side
                // requests all route through handle_request.
                let reply = handle_request(&mut streams, &req);
                prop_assert!(reply.get("ok").is_some());
            }
        }

        // The co-tenant still answers as if nothing happened.
        let q = parse_request(
            br#"{"op":"query","stream":"healthy","what":"recovery-line"}"#
        ).expect("valid query");
        let reply = handle_request(&mut streams, &q);
        prop_assert_eq!(
            reply.to_string(),
            ok_reply(vec![(
                "line",
                Json::Arr(vec![Json::U64(1), Json::U64(0)])
            )])
            .to_string()
        );
    }

    /// Structurally valid JSON with adversarial *values* (huge numbers,
    /// wrong types, deep nesting) never panics the parser or the shard.
    #[test]
    fn adversarial_values_never_panic(seed in any::<u64>()) {
        let mut rng = Rng::new(seed);
        let scalars = [
            "0", "-1", "18446744073709551615", "99999999999999999999",
            "1e308", "null", "true", "\"x\"", "[]", "{}", "[[0,1]]",
        ];
        let keys = [
            "op", "stream", "processes", "type", "process", "from", "to",
            "message", "what", "members",
        ];
        let ops = [
            "open", "event", "query", "compact", "close", "streams",
            "snapshot", "ping",
        ];
        let mut streams: BTreeMap<String, StreamEngine> = BTreeMap::new();
        for _ in 0..200 {
            let mut frame = String::from("{");
            frame.push_str(&format!(r#""op":"{}""#, ops[rng.below(ops.len())]));
            for _ in 0..rng.below(6) {
                let key = keys[rng.below(keys.len())];
                let value = scalars[rng.below(scalars.len())];
                frame.push_str(&format!(r#","{key}":{value}"#));
            }
            frame.push('}');
            if let Ok(req) = parse_request(frame.as_bytes()) {
                handle_request(&mut streams, &req);
            }
        }
        // Deep nesting: rejected by the depth limit, not a stack overflow.
        let deep = "[".repeat(4000) + &"]".repeat(4000);
        prop_assert!(Json::parse_bytes(deep.as_bytes()).is_err());
    }
}
