//! Daemon-level invariants, driven in-process against the engine pool:
//!
//! * **Determinism** — the same session transcript yields byte-identical
//!   replies for any worker count.
//! * **Persistence** — snapshot → restore is byte-identical: the restored
//!   pool answers every query the same, and re-snapshotting reproduces
//!   the document byte for byte, even after appending a common suffix to
//!   both sides.
//! * **Isolation** — malformed frames and rejected events on one stream
//!   never disturb another stream's answers.

use proptest::prelude::*;
use rdt_json::Json;
use rdt_serve::{parse_request, EnginePool, Request};

struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed | 1)
    }

    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() as usize) % n.max(1)
    }
}

/// One random multi-tenant session: opens a few streams, then interleaves
/// valid events, invalid events, queries, compactions, and the odd close.
/// Tracks per-stream in-flight messages so most deliveries are valid.
fn random_session(rng: &mut Rng, requests: usize) -> Vec<String> {
    let names = ["alpha", "beta", "gamma"];
    let n = 3usize;
    let mut lines = Vec::new();
    let mut sent = vec![0u32; names.len()];
    let mut in_flight: Vec<Vec<u32>> = vec![Vec::new(); names.len()];
    for (i, name) in names.iter().enumerate() {
        lines.push(format!(
            r#"{{"op":"open","stream":"{name}","processes":{n}}}"#
        ));
        let _ = i;
    }
    for _ in 0..requests {
        let s = rng.below(names.len());
        let name = names[s];
        match rng.below(12) {
            0 | 1 => lines.push(format!(
                r#"{{"op":"event","stream":"{name}","type":"checkpoint","process":{}}}"#,
                rng.below(n)
            )),
            2..=4 => {
                let from = rng.below(n);
                let to = (from + 1 + rng.below(n - 1)) % n;
                lines.push(format!(
                    r#"{{"op":"event","stream":"{name}","type":"send","from":{from},"to":{to}}}"#
                ));
                in_flight[s].push(sent[s]);
                sent[s] += 1;
            }
            5 | 6 => {
                if !in_flight[s].is_empty() {
                    let k = rng.below(in_flight[s].len());
                    let mid = in_flight[s].swap_remove(k);
                    lines.push(format!(
                        r#"{{"op":"event","stream":"{name}","type":"deliver","message":{mid}}}"#
                    ));
                }
            }
            7 => lines.push(format!(
                r#"{{"op":"event","stream":"{name}","type":"deliver","message":{}}}"#,
                sent[s] + 50 // never sent: must be a structured event error
            )),
            8 => lines.push(format!(
                r#"{{"op":"event","stream":"{name}","type":"crash","process":{}}}"#,
                rng.below(n)
            )),
            9 => lines.push(format!(
                r#"{{"op":"query","stream":"{name}","what":"untrackable"}}"#
            )),
            10 => lines.push(format!(
                r#"{{"op":"query","stream":"{name}","what":"recovery-line"}}"#
            )),
            _ => lines.push(format!(r#"{{"op":"compact","stream":"{name}"}}"#)),
        }
    }
    for name in names {
        lines.push(format!(
            r#"{{"op":"query","stream":"{name}","what":"untrackable"}}"#
        ));
        lines.push(format!(
            r#"{{"op":"query","stream":"{name}","what":"recovery-line"}}"#
        ));
    }
    lines
}

fn parse_line(line: &str) -> Request {
    parse_request(line.as_bytes()).expect("generated sessions are parseable")
}

fn replay(pool: &EnginePool, lines: &[String]) -> Vec<String> {
    let handle = pool.handle();
    lines
        .iter()
        .map(|line| handle.request(parse_line(line)).to_string())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Same session, worker counts 1 / 2 / 5: byte-identical replies.
    #[test]
    fn replies_are_deterministic_across_worker_counts(seed in any::<u64>()) {
        let mut rng = Rng::new(seed);
        let lines = random_session(&mut rng, 120);
        let mut transcripts = Vec::new();
        for workers in [1usize, 2, 5] {
            let pool = EnginePool::new(workers);
            transcripts.push(replay(&pool, &lines));
            pool.join();
        }
        prop_assert_eq!(&transcripts[0], &transcripts[1]);
        prop_assert_eq!(&transcripts[0], &transcripts[2]);
    }

    /// Snapshot/restore byte-identity, including after a common suffix.
    #[test]
    fn snapshot_restore_is_byte_identical(seed in any::<u64>()) {
        let mut rng = Rng::new(seed);
        let prefix = random_session(&mut rng, 80);
        // The suffix reuses only always-valid ops so it applies cleanly
        // to both the original and the restored pool.
        let suffix: Vec<String> = (0..30)
            .map(|k| match k % 3 {
                0 => format!(
                    r#"{{"op":"event","stream":"alpha","type":"checkpoint","process":{}}}"#,
                    k % 3
                ),
                1 => r#"{"op":"query","stream":"beta","what":"recovery-line"}"#.to_string(),
                _ => r#"{"op":"query","stream":"gamma","what":"untrackable"}"#.to_string(),
            })
            .collect();

        let original = EnginePool::new(2);
        replay(&original, &prefix);
        let doc = original.handle().snapshot_document().expect("snapshot");

        let restored = EnginePool::new(3);
        restored
            .handle()
            .restore_document(&doc, 4)
            .expect("restore");

        // Restored pool re-snapshots byte-identically...
        prop_assert_eq!(
            doc.to_string(),
            restored.handle().snapshot_document().expect("snapshot").to_string()
        );
        // ...answers the suffix byte-identically...
        let a = replay(&original, &suffix);
        let b = replay(&restored, &suffix);
        prop_assert_eq!(a, b);
        // ...and both sides re-snapshot to the same bytes afterwards.
        prop_assert_eq!(
            original.handle().snapshot_document().expect("snapshot").to_string(),
            restored.handle().snapshot_document().expect("snapshot").to_string()
        );
        original.join();
        restored.join();
    }

    /// A corrupted snapshot is rejected as a structured error, and the
    /// pool it was aimed at keeps serving.
    #[test]
    fn corrupted_snapshots_are_rejected(seed in any::<u64>()) {
        let mut rng = Rng::new(seed);
        let lines = random_session(&mut rng, 40);
        let pool = EnginePool::new(2);
        replay(&pool, &lines);
        let doc = pool.handle().snapshot_document().expect("snapshot");
        let text = doc.to_string();

        // Bit-flip corruption somewhere in the document. Some flips keep
        // it parseable-and-valid; any flip that breaks parsing or
        // validation must surface as Err, never a panic.
        let mut bytes = text.clone().into_bytes();
        let i = rng.below(bytes.len());
        bytes[i] ^= 1 << rng.below(8);
        let fresh = EnginePool::new(2);
        if let Ok(parsed) = Json::parse_bytes(&bytes) {
            let _ = fresh.handle().restore_document(&parsed, 2);
        }
        // Whatever happened, the target pool still works.
        let reply = fresh.handle().request(parse_line(
            r#"{"op":"open","stream":"fresh","processes":2}"#
        ));
        // `fresh` may collide with a restored stream name only if restore
        // succeeded; either way the reply is structured.
        prop_assert!(reply.get("ok").is_some());
        fresh.join();
        pool.join();
    }
}
