//! The sharded engine pool.
//!
//! Streams are partitioned over `workers` shard threads by an FNV-1a
//! hash of the stream name; each shard thread exclusively owns the
//! engines of its streams in a `BTreeMap` and processes their requests
//! in arrival order. That gives the determinism contract for free: a
//! stream's replies depend only on the order of its own requests — never
//! on the worker count or on what other tenants do — so replaying a
//! session against a 1-shard and an N-shard pool yields byte-identical
//! per-stream replies.
//!
//! Snapshot restore reuses the deterministic work-stealing pool
//! ([`rdt_sim::parallel_map_indexed`]) to rebuild many engines in
//! parallel: results come back in item order, so the restored daemon is
//! identical for any `--workers` count there too.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

use rdt_json::Json;
use rdt_sim::parallel_map_indexed;

use crate::engine::StreamEngine;
use crate::protocol::{error_reply, ok_reply, ErrorKind, Request, ServeError, MAX_STREAMS};

/// Daemon snapshot format marker.
pub const POOL_SNAPSHOT_FORMAT: &str = "rdt-serve-snapshot";

/// Daemon snapshot format version.
pub const POOL_SNAPSHOT_VERSION: u64 = 1;

enum ShardMsg {
    /// A stream-scoped request; the shard replies with the wire JSON.
    Handle { req: Request, reply: Sender<Json> },
    /// Collect `(name, stream snapshot)` for every stream of the shard.
    SnapshotAll { reply: Sender<Vec<(String, Json)>> },
    /// Collect the shard's stream names.
    List { reply: Sender<Vec<String>> },
    /// Install a restored stream (restore path). The engine is boxed to
    /// keep the message enum small for the common `Handle` case.
    Install {
        name: String,
        engine: Box<StreamEngine>,
        reply: Sender<Result<(), ServeError>>,
    },
    /// Drain and exit.
    Stop,
}

/// FNV-1a 64-bit — stable across platforms, so shard assignment (and
/// with it any shard-local observable) is reproducible everywhere.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn admin_reply(stream: Option<&str>, message: impl Into<String>) -> Json {
    error_reply(stream, &ServeError::new(ErrorKind::Admin, message))
}

/// Processes one stream-scoped request against the shard's engines. This
/// is the daemon's ingest heart: it must never panic on any input, which
/// the `panic-reachability` lint enforces statically from this entry
/// point.
pub fn handle_request(streams: &mut BTreeMap<String, StreamEngine>, req: &Request) -> Json {
    match req {
        Request::Open { stream, processes } => {
            if streams.contains_key(stream) {
                return error_reply(
                    Some(stream),
                    &ServeError::new(ErrorKind::Stream, format!("stream `{stream}` already open")),
                );
            }
            streams.insert(stream.clone(), StreamEngine::new(*processes));
            ok_reply(vec![
                ("stream", Json::Str(stream.clone())),
                ("processes", Json::U64(*processes as u64)),
            ])
        }
        Request::Event { stream, event } => match streams.get_mut(stream) {
            None => unknown_stream(stream),
            Some(engine) => match engine.ingest_event(event) {
                Ok(fields) => ok_reply(fields),
                Err(e) => error_reply(Some(stream), &e),
            },
        },
        Request::Query { stream, query } => match streams.get_mut(stream) {
            None => unknown_stream(stream),
            Some(engine) => match engine.answer_query(query) {
                Ok(fields) => ok_reply(fields),
                Err(e) => error_reply(Some(stream), &e),
            },
        },
        Request::Compact { stream } => match streams.get_mut(stream) {
            None => unknown_stream(stream),
            Some(engine) => ok_reply(engine.compact()),
        },
        Request::Close { stream } => {
            if streams.remove(stream).is_some() {
                ok_reply(vec![("closed", Json::Str(stream.clone()))])
            } else {
                unknown_stream(stream)
            }
        }
        // Daemon-scoped ops never reach a shard; answer defensively
        // rather than panicking.
        Request::Streams | Request::Snapshot | Request::Ping | Request::Shutdown => {
            admin_reply(None, "daemon-scoped request routed to a shard")
        }
    }
}

fn unknown_stream(stream: &str) -> Json {
    error_reply(
        Some(stream),
        &ServeError::new(ErrorKind::Stream, format!("unknown stream `{stream}`")),
    )
}

fn shard_main(rx: std::sync::mpsc::Receiver<ShardMsg>) {
    let mut streams: BTreeMap<String, StreamEngine> = BTreeMap::new();
    while let Ok(msg) = rx.recv() {
        match msg {
            ShardMsg::Handle { req, reply } => {
                // A dropped reply sender means the requesting connection
                // went away; the work is already done either way.
                let _ = reply.send(handle_request(&mut streams, &req));
            }
            ShardMsg::SnapshotAll { reply } => {
                let docs = streams
                    .iter()
                    .map(|(name, engine)| (name.clone(), engine.stream_snapshot(name)))
                    .collect();
                let _ = reply.send(docs);
            }
            ShardMsg::List { reply } => {
                let _ = reply.send(streams.keys().cloned().collect());
            }
            ShardMsg::Install {
                name,
                engine,
                reply,
            } => {
                let result = match streams.entry(name) {
                    std::collections::btree_map::Entry::Occupied(slot) => Err(ServeError::new(
                        ErrorKind::Admin,
                        format!("snapshot names stream `{}` twice", slot.key()),
                    )),
                    std::collections::btree_map::Entry::Vacant(slot) => {
                        slot.insert(*engine);
                        Ok(())
                    }
                };
                let _ = reply.send(result);
            }
            ShardMsg::Stop => break,
        }
    }
}

/// A cloneable handle to the pool: what connection threads use to submit
/// requests.
#[derive(Clone)]
pub struct PoolHandle {
    shards: Vec<Sender<ShardMsg>>,
    open_streams: Arc<AtomicUsize>,
}

impl PoolHandle {
    fn shard_of(&self, stream: &str) -> &Sender<ShardMsg> {
        let i = (fnv1a(stream.as_bytes()) % self.shards.len() as u64) as usize;
        &self.shards[i]
    }

    /// Submits one stream-scoped request and waits for the shard's reply.
    /// Daemon-scoped requests ([`Request::Streams`] aside) are the
    /// server's job; submitting one here yields an admin error reply.
    pub fn request(&self, req: Request) -> Json {
        let stream = match req.stream() {
            Some(name) => name.to_string(),
            None => {
                if let Request::Streams = req {
                    return ok_reply(vec![("streams", self.stream_names())]);
                }
                return admin_reply(None, "request is handled by the server, not the pool");
            }
        };

        // Global stream accounting. The count is reserved before the
        // open and released if the shard rejects it, so the bound holds
        // under concurrent opens.
        let opening = matches!(req, Request::Open { .. });
        if opening && self.open_streams.fetch_add(1, Ordering::SeqCst) >= MAX_STREAMS {
            self.open_streams.fetch_sub(1, Ordering::SeqCst);
            return error_reply(
                Some(&stream),
                &ServeError::new(
                    ErrorKind::Limit,
                    format!("stream limit of {MAX_STREAMS} reached"),
                ),
            );
        }
        let closing = matches!(req, Request::Close { .. });

        let (tx, rx) = channel();
        let sent = self
            .shard_of(&stream)
            .send(ShardMsg::Handle { req, reply: tx });
        let reply = match sent {
            Ok(()) => match rx.recv() {
                Ok(reply) => reply,
                Err(_) => admin_reply(Some(&stream), "shard is not running"),
            },
            Err(_) => admin_reply(Some(&stream), "shard is not running"),
        };
        let succeeded = reply.get("ok") == Some(&Json::Bool(true));
        if (opening && !succeeded) || (closing && succeeded) {
            self.open_streams.fetch_sub(1, Ordering::SeqCst);
        }
        reply
    }

    fn stream_names(&self) -> Json {
        let mut names: Vec<String> = Vec::new();
        for shard in &self.shards {
            let (tx, rx) = channel();
            if shard.send(ShardMsg::List { reply: tx }).is_ok() {
                if let Ok(batch) = rx.recv() {
                    names.extend(batch);
                }
            }
        }
        names.sort();
        Json::Arr(names.into_iter().map(Json::Str).collect())
    }

    /// Builds the daemon snapshot document: every stream of every shard,
    /// sorted by name so the document is identical for any worker count.
    pub fn snapshot_document(&self) -> Result<Json, ServeError> {
        let mut entries: Vec<(String, Json)> = Vec::new();
        for shard in &self.shards {
            let (tx, rx) = channel();
            shard
                .send(ShardMsg::SnapshotAll { reply: tx })
                .map_err(|_| ServeError::new(ErrorKind::Admin, "shard is not running"))?;
            entries.extend(
                rx.recv()
                    .map_err(|_| ServeError::new(ErrorKind::Admin, "shard is not running"))?,
            );
        }
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(Json::obj([
            ("format", Json::Str(POOL_SNAPSHOT_FORMAT.to_string())),
            ("version", Json::U64(POOL_SNAPSHOT_VERSION)),
            (
                "streams",
                Json::Arr(entries.into_iter().map(|(_, doc)| doc).collect()),
            ),
        ]))
    }

    /// Restores every stream of a snapshot document into the pool.
    /// Engines are rebuilt in parallel on the deterministic work-stealing
    /// pool, then installed into their shards; the first invalid entry
    /// aborts the restore with an [`ErrorKind::Admin`] error.
    pub fn restore_document(&self, doc: &Json, threads: usize) -> Result<usize, ServeError> {
        let admin = |m: &str| ServeError::new(ErrorKind::Admin, m);
        if doc.get("format").and_then(Json::as_str) != Some(POOL_SNAPSHOT_FORMAT) {
            return Err(admin("not an rdt-serve snapshot"));
        }
        if doc.get("version").and_then(Json::as_u64) != Some(POOL_SNAPSHOT_VERSION) {
            return Err(admin("unsupported snapshot version"));
        }
        let entries = doc
            .get("streams")
            .and_then(Json::as_array)
            .ok_or_else(|| admin("missing `streams` array"))?;
        if entries.len() > MAX_STREAMS {
            return Err(admin("snapshot exceeds the stream limit"));
        }

        let restored = parallel_map_indexed(
            entries,
            threads,
            || (),
            |_, _, entry| StreamEngine::from_stream_snapshot(entry),
            |_| {},
        );
        let mut installed = 0usize;
        for result in restored {
            let (name, engine) = result?;
            let (tx, rx) = channel();
            self.shard_of(&name)
                .send(ShardMsg::Install {
                    name,
                    engine: Box::new(engine),
                    reply: tx,
                })
                .map_err(|_| ServeError::new(ErrorKind::Admin, "shard is not running"))?;
            rx.recv()
                .map_err(|_| ServeError::new(ErrorKind::Admin, "shard is not running"))??;
            installed += 1;
            self.open_streams.fetch_add(1, Ordering::SeqCst);
        }
        Ok(installed)
    }
}

/// The pool itself: shard threads plus the handle. Dropping the pool
/// without [`join`](EnginePool::join) detaches the shard threads; the
/// daemon always joins on shutdown.
pub struct EnginePool {
    handle: PoolHandle,
    workers: Vec<JoinHandle<()>>,
}

impl EnginePool {
    /// Spawns `workers` shard threads (at least one).
    pub fn new(workers: usize) -> EnginePool {
        let workers = workers.max(1);
        let mut senders = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (tx, rx) = channel();
            senders.push(tx);
            handles.push(std::thread::spawn(move || shard_main(rx)));
        }
        EnginePool {
            handle: PoolHandle {
                shards: senders,
                open_streams: Arc::new(AtomicUsize::new(0)),
            },
            workers: handles,
        }
    }

    /// Number of shard threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// A cloneable request handle for connection threads.
    pub fn handle(&self) -> PoolHandle {
        self.handle.clone()
    }

    /// Stops every shard and joins its thread.
    pub fn join(self) {
        for shard in &self.handle.shards {
            let _ = shard.send(ShardMsg::Stop);
        }
        for worker in self.workers {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::parse_request;

    fn req(line: &str) -> Request {
        parse_request(line.as_bytes()).expect("test request parses")
    }

    /// Replays the same multi-tenant session against pools of different
    /// sizes: per-stream replies must be byte-identical.
    #[test]
    fn worker_count_does_not_change_replies() {
        let session = [
            r#"{"op":"open","stream":"a","processes":3}"#,
            r#"{"op":"open","stream":"b","processes":2}"#,
            r#"{"op":"event","stream":"a","type":"checkpoint","process":0}"#,
            r#"{"op":"event","stream":"a","type":"send","from":0,"to":1}"#,
            r#"{"op":"event","stream":"b","type":"send","from":1,"to":0}"#,
            r#"{"op":"event","stream":"a","type":"deliver","message":0}"#,
            r#"{"op":"event","stream":"b","type":"deliver","message":0}"#,
            r#"{"op":"event","stream":"a","type":"checkpoint","process":1}"#,
            r#"{"op":"query","stream":"a","what":"untrackable"}"#,
            r#"{"op":"query","stream":"a","what":"recovery-line"}"#,
            r#"{"op":"query","stream":"b","what":"recovery-line"}"#,
            r#"{"op":"event","stream":"a","type":"crash","process":1}"#,
            r#"{"op":"query","stream":"b","what":"untrackable"}"#,
        ];
        let mut transcripts: Vec<Vec<String>> = Vec::new();
        for workers in [1, 2, 7] {
            let pool = EnginePool::new(workers);
            let handle = pool.handle();
            let replies: Vec<String> = session
                .iter()
                .map(|line| handle.request(req(line)).to_string())
                .collect();
            pool.join();
            transcripts.push(replies);
        }
        assert_eq!(transcripts[0], transcripts[1]);
        assert_eq!(transcripts[0], transcripts[2]);
    }

    /// Errors on one stream leave other tenants fully operational.
    #[test]
    fn tenant_isolation_across_errors() {
        let pool = EnginePool::new(3);
        let handle = pool.handle();
        handle.request(req(r#"{"op":"open","stream":"good","processes":2}"#));
        handle.request(req(r#"{"op":"open","stream":"evil","processes":2}"#));
        // A storm of invalid events on `evil`.
        for _ in 0..10 {
            let reply = handle.request(req(
                r#"{"op":"event","stream":"evil","type":"deliver","message":7}"#,
            ));
            assert_eq!(reply.get("ok"), Some(&Json::Bool(false)));
        }
        // `good` is unaffected.
        let reply = handle.request(req(
            r#"{"op":"event","stream":"good","type":"send","from":0,"to":1}"#,
        ));
        assert_eq!(reply.get("ok"), Some(&Json::Bool(true)));
        let reply = handle.request(req(
            r#"{"op":"query","stream":"good","what":"untrackable"}"#,
        ));
        assert_eq!(reply.get("untrackable"), Some(&Json::U64(0)));
        pool.join();
    }

    /// Snapshot → restore into a fresh pool (different worker count)
    /// answers every query byte-identically.
    #[test]
    fn snapshot_restore_across_pool_sizes() {
        let pool = EnginePool::new(2);
        let handle = pool.handle();
        for line in [
            r#"{"op":"open","stream":"t1","processes":3}"#,
            r#"{"op":"open","stream":"t2","processes":2}"#,
            r#"{"op":"event","stream":"t1","type":"send","from":0,"to":1}"#,
            r#"{"op":"event","stream":"t1","type":"deliver","message":0}"#,
            r#"{"op":"event","stream":"t1","type":"checkpoint","process":1}"#,
            r#"{"op":"event","stream":"t2","type":"checkpoint","process":0}"#,
        ] {
            let reply = handle.request(req(line));
            assert_eq!(reply.get("ok"), Some(&Json::Bool(true)), "{line}");
        }
        let doc = handle.snapshot_document().expect("snapshot");
        let queries = [
            r#"{"op":"query","stream":"t1","what":"untrackable"}"#,
            r#"{"op":"query","stream":"t1","what":"recovery-line"}"#,
            r#"{"op":"query","stream":"t1","what":"min-consistent","members":[[1,1]]}"#,
            r#"{"op":"query","stream":"t2","what":"recovery-line"}"#,
        ];
        let before: Vec<String> = queries
            .iter()
            .map(|line| handle.request(req(line)).to_string())
            .collect();
        pool.join();

        let pool2 = EnginePool::new(5);
        let handle2 = pool2.handle();
        let installed = handle2.restore_document(&doc, 4).expect("restore");
        assert_eq!(installed, 2);
        let after: Vec<String> = queries
            .iter()
            .map(|line| handle2.request(req(line)).to_string())
            .collect();
        assert_eq!(before, after);
        // And the re-snapshot is byte-identical too.
        assert_eq!(
            doc.to_string(),
            handle2.snapshot_document().expect("snapshot").to_string()
        );
        pool2.join();
    }
}
