//! The `rdt-serve` daemon binary.
//!
//! ```text
//! rdt-serve [--listen ADDR | --unix PATH] [--workers N] [--snapshot PATH]
//! ```
//!
//! Defaults: `--listen 127.0.0.1:7878`, `--workers 4`, no persistence.
//! The daemon prints one status line once it is accepting connections,
//! then serves until a `{"op":"shutdown"}` frame arrives.

use std::path::PathBuf;
use std::process::ExitCode;

use rdt_serve::{Endpoint, Server, ServerConfig};

const USAGE: &str =
    "usage: rdt-serve [--listen ADDR | --unix PATH] [--workers N] [--snapshot PATH]";

fn parse_args(args: &[String]) -> Result<ServerConfig, String> {
    let mut endpoint: Option<Endpoint> = None;
    let mut workers = 4usize;
    let mut snapshot_path: Option<PathBuf> = None;

    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| -> Result<&String, String> {
            args.get(i + 1)
                .ok_or_else(|| format!("{} needs a value\n{USAGE}", args[i]))
        };
        match args[i].as_str() {
            "--listen" => {
                if endpoint.is_some() {
                    return Err(format!("--listen and --unix are exclusive\n{USAGE}"));
                }
                endpoint = Some(Endpoint::Tcp(value(i)?.clone()));
                i += 2;
            }
            "--unix" => {
                if endpoint.is_some() {
                    return Err(format!("--listen and --unix are exclusive\n{USAGE}"));
                }
                endpoint = Some(Endpoint::Unix(PathBuf::from(value(i)?)));
                i += 2;
            }
            "--workers" => {
                workers = value(i)?
                    .parse()
                    .map_err(|_| format!("--workers needs a positive integer\n{USAGE}"))?;
                if workers == 0 {
                    return Err(format!("--workers needs a positive integer\n{USAGE}"));
                }
                i += 2;
            }
            "--snapshot" => {
                snapshot_path = Some(PathBuf::from(value(i)?));
                i += 2;
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
        }
    }

    Ok(ServerConfig {
        endpoint: endpoint.unwrap_or_else(|| Endpoint::Tcp("127.0.0.1:7878".to_string())),
        workers,
        snapshot_path,
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let config = match parse_args(&args) {
        Ok(config) => config,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };

    let described = match &config.endpoint {
        Endpoint::Tcp(addr) => format!("tcp {addr}"),
        Endpoint::Unix(path) => format!("unix {}", path.display()),
    };
    let server = match Server::bind(config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("rdt-serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    let bound = server
        .local_addr()
        .map_or(described, |addr| format!("tcp {addr}"));
    println!(
        "rdt-serve: listening on {bound} ({} streams restored)",
        server.restored_streams()
    );
    match server.run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("rdt-serve: {e}");
            ExitCode::FAILURE
        }
    }
}
