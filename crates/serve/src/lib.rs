//! `rdt-serve` — the multi-tenant streaming RDT daemon.
//!
//! The daemon accepts newline-delimited JSON frames over a TCP or
//! Unix-domain socket. Each tenant opens an independent *stream* (a
//! named checkpoint-and-communication pattern over `n` processes) and
//! feeds it `send` / `deliver` / `checkpoint` / `crash` events; behind
//! the scenes every stream owns one incremental R-graph engine
//! ([`rdt_rgraph::IncrementalAnalysis`]), so live queries — the running
//! count of reachable-but-untrackable checkpoint pairs, the recovery
//! line, and the minimum/maximum consistent global checkpoint containing
//! a target set — answer in time proportional to the touched state, not
//! the stream's history.
//!
//! # Architecture
//!
//! ```text
//!  connections (1 thread each)          shards (--workers threads)
//!  ┌───────────────┐  parse    ┌────────────────────────────────┐
//!  │ read line     │ ────────► │ shard = fnv1a(stream) % W      │
//!  │ write reply   │ ◄──────── │ BTreeMap<name, StreamEngine>   │
//!  └───────────────┘  reply    └────────────────────────────────┘
//! ```
//!
//! Stream requests are processed by exactly one shard thread in arrival
//! order, which makes per-stream replies deterministic for **any**
//! worker count. Snapshot restore fans the per-stream engine rebuilds
//! out over the deterministic work-stealing pool from `rdt-sim`.
//!
//! # Robustness contract
//!
//! Every byte sequence a client can send — malformed JSON, truncated
//! escapes, events out of order, duplicate deliveries, unknown streams,
//! oversized lines — produces a structured error reply from the taxonomy
//! in [`ErrorKind`], never a panic and never cross-tenant corruption.
//! The repo's panic-reachability lint checks this statically from the
//! [`handle_request`] / [`parse_request`] entry points.

pub mod engine;
pub mod protocol;
pub mod server;
pub mod shard;

pub use engine::{StreamEngine, STREAM_SNAPSHOT_FORMAT};
pub use protocol::{
    error_reply, ok_reply, parse_request, ErrorKind, EventKind, QueryKind, Request, ServeError,
    MAX_LINE_BYTES, MAX_NAME_BYTES, MAX_PROCESSES, MAX_STREAMS,
};
pub use server::{Endpoint, Server, ServerConfig};
pub use shard::{
    handle_request, EnginePool, PoolHandle, POOL_SNAPSHOT_FORMAT, POOL_SNAPSHOT_VERSION,
};
