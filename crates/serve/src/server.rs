//! The daemon's socket front end.
//!
//! One listener (TCP or Unix-domain), one thread per connection, one
//! request per line. Connections are untrusted: lines are length-bounded
//! before parsing, parsing is total, and every failure becomes a
//! structured error reply on that connection only — other tenants keep
//! streaming.
//!
//! Persistence: with `--snapshot PATH`, the daemon restores the snapshot
//! at startup (if present), persists on the `snapshot` op, and persists
//! again on `shutdown`. Writes are atomic (temp file + rename), so a
//! crash mid-write never corrupts the previous snapshot.

use std::fs;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use rdt_json::Json;

use crate::protocol::{
    error_reply, ok_reply, parse_request, ErrorKind, Request, ServeError, MAX_LINE_BYTES,
};
use crate::shard::{EnginePool, PoolHandle};

/// Where the daemon listens.
#[derive(Debug, Clone)]
pub enum Endpoint {
    /// A TCP address, e.g. `127.0.0.1:7878` (port 0 picks a free port).
    Tcp(String),
    /// A Unix-domain socket path.
    Unix(PathBuf),
}

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listening endpoint.
    pub endpoint: Endpoint,
    /// Shard thread count (clamped to at least 1).
    pub workers: usize,
    /// Snapshot file for restore-at-startup / `snapshot` / shutdown
    /// persistence. `None` disables persistence.
    pub snapshot_path: Option<PathBuf>,
}

enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener),
}

enum Conn {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Conn {
    /// Splits into an owned read half and write half (`try_clone`).
    fn split(self) -> std::io::Result<(Conn, Conn)> {
        match self {
            Conn::Tcp(s) => {
                let r = s.try_clone()?;
                Ok((Conn::Tcp(r), Conn::Tcp(s)))
            }
            Conn::Unix(s) => {
                let r = s.try_clone()?;
                Ok((Conn::Unix(r), Conn::Unix(s)))
            }
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            Conn::Unix(s) => s.flush(),
        }
    }
}

/// How a connection thread wakes the accept loop after flipping the
/// shutdown flag: connect once and immediately drop.
enum Poke {
    Tcp(SocketAddr),
    Unix(PathBuf),
}

struct Shared {
    handle: PoolHandle,
    snapshot_path: Option<PathBuf>,
    shutdown: AtomicBool,
    poke: Poke,
}

impl Shared {
    fn poke_accept(&self) {
        match &self.poke {
            Poke::Tcp(addr) => drop(TcpStream::connect(addr)),
            Poke::Unix(path) => drop(UnixStream::connect(path)),
        }
    }
}

fn admin(message: impl Into<String>) -> ServeError {
    ServeError::new(ErrorKind::Admin, message)
}

/// Atomically writes `doc` to `path` (temp file in the same directory,
/// then rename).
fn write_snapshot_file(path: &Path, doc: &Json) -> Result<(), ServeError> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    let mut text = doc.to_string();
    text.push('\n');
    fs::write(&tmp, text).map_err(|e| admin(format!("writing snapshot: {e}")))?;
    fs::rename(&tmp, path).map_err(|e| admin(format!("publishing snapshot: {e}")))
}

/// Persists the current pool state to the configured snapshot path;
/// returns the number of streams persisted.
fn persist_snapshot(shared: &Shared) -> Result<usize, ServeError> {
    let path = shared
        .snapshot_path
        .as_deref()
        .ok_or_else(|| admin("daemon has no snapshot path configured"))?;
    let doc = shared.handle.snapshot_document()?;
    let count = doc
        .get("streams")
        .and_then(Json::as_array)
        .map_or(0, <[Json]>::len);
    write_snapshot_file(path, &doc)?;
    Ok(count)
}

/// Routes one parsed line: daemon-scoped ops are answered here,
/// stream-scoped ops go to the pool. Returns the reply and whether the
/// daemon should stop.
fn dispatch_line(shared: &Shared, line: &[u8]) -> (Json, bool) {
    let req = match parse_request(line) {
        Ok(req) => req,
        Err(e) => return (error_reply(None, &e), false),
    };
    match req {
        Request::Ping => (ok_reply(vec![("pong", Json::Bool(true))]), false),
        Request::Snapshot => match persist_snapshot(shared) {
            Ok(count) => (
                ok_reply(vec![("persisted", Json::U64(count as u64))]),
                false,
            ),
            Err(e) => (error_reply(None, &e), false),
        },
        Request::Shutdown => {
            let mut fields = vec![("stopping", Json::Bool(true))];
            if shared.snapshot_path.is_some() {
                match persist_snapshot(shared) {
                    Ok(count) => fields.push(("persisted", Json::U64(count as u64))),
                    Err(e) => fields.push(("snapshot_error", Json::Str(e.to_string()))),
                }
            }
            (ok_reply(fields), true)
        }
        other => (shared.handle.request(other), false),
    }
}

fn write_reply(writer: &mut Conn, reply: &Json) -> std::io::Result<()> {
    let mut text = reply.to_string();
    text.push('\n');
    writer.write_all(text.as_bytes())?;
    writer.flush()
}

fn serve_connection(shared: &Shared, conn: Conn) {
    let (read_half, mut writer) = match conn.split() {
        Ok(halves) => halves,
        Err(_) => return,
    };
    let mut reader = BufReader::new(read_half);
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let mut line = Vec::new();
        // Read one byte past the limit so an exactly-limit line (newline
        // included) still goes through while an oversized one is caught.
        let n = match (&mut reader)
            .take(MAX_LINE_BYTES as u64 + 1)
            .read_until(b'\n', &mut line)
        {
            Ok(n) => n,
            Err(_) => break,
        };
        if n == 0 {
            break; // EOF
        }
        if line.len() > MAX_LINE_BYTES {
            let e = ServeError::new(
                ErrorKind::Limit,
                format!("request line longer than {MAX_LINE_BYTES} bytes"),
            );
            let _ = write_reply(&mut writer, &error_reply(None, &e));
            break; // The stream is mid-line; resynchronizing is not safe.
        }
        let trimmed = trim_frame(&line);
        if trimmed.is_empty() {
            continue;
        }
        let (reply, stop) = dispatch_line(shared, trimmed);
        if write_reply(&mut writer, &reply).is_err() {
            break;
        }
        if stop {
            shared.shutdown.store(true, Ordering::SeqCst);
            shared.poke_accept();
            break;
        }
    }
}

/// Strips the frame delimiter and surrounding ASCII whitespace.
fn trim_frame(line: &[u8]) -> &[u8] {
    let mut s = line;
    while let Some((&b, rest)) = s.split_first() {
        if b.is_ascii_whitespace() {
            s = rest;
        } else {
            break;
        }
    }
    while let Some((&b, rest)) = s.split_last() {
        if b.is_ascii_whitespace() {
            s = rest;
        } else {
            break;
        }
    }
    s
}

/// A bound daemon: listener plus engine pool, ready to [`run`](Server::run).
pub struct Server {
    listener: Listener,
    pool: EnginePool,
    shared: Arc<Shared>,
    restored: usize,
}

impl Server {
    /// Binds the endpoint, spawns the engine pool, and — when a snapshot
    /// path is configured and the file exists — restores every stream
    /// from it.
    pub fn bind(config: ServerConfig) -> Result<Server, ServeError> {
        let pool = EnginePool::new(config.workers);
        let handle = pool.handle();

        let mut restored = 0usize;
        if let Some(path) = &config.snapshot_path {
            if path.exists() {
                let bytes = fs::read(path).map_err(|e| admin(format!("reading snapshot: {e}")))?;
                let doc = Json::parse_bytes(&bytes)
                    .map_err(|e| admin(format!("snapshot is not valid JSON: {e}")))?;
                restored = handle.restore_document(&doc, pool.workers())?;
            }
        }

        let (listener, poke) = match &config.endpoint {
            Endpoint::Tcp(addr) => {
                let listener = TcpListener::bind(addr.as_str())
                    .map_err(|e| admin(format!("binding {addr}: {e}")))?;
                let local = listener
                    .local_addr()
                    .map_err(|e| admin(format!("resolving local address: {e}")))?;
                (Listener::Tcp(listener), Poke::Tcp(local))
            }
            Endpoint::Unix(path) => {
                // A stale socket file from a previous run would make bind
                // fail; the daemon owns the path, so clear it.
                if path.exists() {
                    let _ = fs::remove_file(path);
                }
                let listener = UnixListener::bind(path)
                    .map_err(|e| admin(format!("binding {}: {e}", path.display())))?;
                (Listener::Unix(listener), Poke::Unix(path.clone()))
            }
        };

        Ok(Server {
            listener,
            pool,
            shared: Arc::new(Shared {
                handle,
                snapshot_path: config.snapshot_path,
                shutdown: AtomicBool::new(false),
                poke,
            }),
            restored,
        })
    }

    /// Streams restored from the snapshot at bind time.
    pub fn restored_streams(&self) -> usize {
        self.restored
    }

    /// The actual TCP address (useful when binding port 0).
    pub fn local_addr(&self) -> Option<SocketAddr> {
        match &self.listener {
            Listener::Tcp(l) => l.local_addr().ok(),
            Listener::Unix(_) => None,
        }
    }

    /// Accepts connections until a `shutdown` request arrives, then stops
    /// the engine pool. Each connection gets its own thread; a connection
    /// failing never affects the others.
    pub fn run(self) -> Result<(), ServeError> {
        let mut consecutive_errors = 0usize;
        loop {
            if self.shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let conn = match &self.listener {
                Listener::Tcp(l) => l.accept().map(|(s, _)| Conn::Tcp(s)),
                Listener::Unix(l) => l.accept().map(|(s, _)| Conn::Unix(s)),
            };
            match conn {
                Ok(conn) => {
                    consecutive_errors = 0;
                    let shared = Arc::clone(&self.shared);
                    std::thread::spawn(move || serve_connection(&shared, conn));
                }
                Err(_) => {
                    consecutive_errors += 1;
                    if consecutive_errors > 100 {
                        self.pool.join();
                        return Err(admin("listener failed repeatedly; stopping"));
                    }
                }
            }
        }
        if let Poke::Unix(path) = &self.shared.poke {
            let _ = fs::remove_file(path);
        }
        self.pool.join();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpStream;

    fn roundtrip(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, line: &str) -> String {
        stream
            .write_all(format!("{line}\n").as_bytes())
            .expect("write");
        let mut reply = String::new();
        reader.read_line(&mut reply).expect("read");
        reply.trim_end().to_string()
    }

    /// Full daemon lifecycle over a real TCP socket: multi-tenant
    /// session, malformed frames answered in-band, snapshot, shutdown,
    /// restart, byte-identical answers (with a different worker count).
    #[test]
    fn daemon_survives_restart_with_identical_answers() {
        let dir = std::env::temp_dir().join(format!("rdt-serve-test-{}", std::process::id()));
        let _ = fs::create_dir_all(&dir);
        let snapshot = dir.join("daemon.snapshot.json");
        let _ = fs::remove_file(&snapshot);

        let server = Server::bind(ServerConfig {
            endpoint: Endpoint::Tcp("127.0.0.1:0".to_string()),
            workers: 2,
            snapshot_path: Some(snapshot.clone()),
        })
        .expect("bind");
        assert_eq!(server.restored_streams(), 0);
        let addr = server.local_addr().expect("tcp addr");
        let daemon = std::thread::spawn(move || server.run());

        let mut conn = TcpStream::connect(addr).expect("connect");
        let mut reader = BufReader::new(conn.try_clone().expect("clone"));
        let rt = |c: &mut TcpStream, r: &mut BufReader<TcpStream>, l: &str| roundtrip(c, r, l);

        assert!(rt(&mut conn, &mut reader, r#"{"op":"ping"}"#).contains("pong"));
        for line in [
            r#"{"op":"open","stream":"alpha","processes":3}"#,
            r#"{"op":"open","stream":"beta","processes":2}"#,
            r#"{"op":"event","stream":"alpha","type":"send","from":0,"to":1}"#,
            r#"{"op":"event","stream":"alpha","type":"deliver","message":0}"#,
            r#"{"op":"event","stream":"alpha","type":"checkpoint","process":1}"#,
            r#"{"op":"event","stream":"beta","type":"checkpoint","process":0}"#,
        ] {
            let reply = rt(&mut conn, &mut reader, line);
            assert!(reply.starts_with(r#"{"ok":true"#), "{line} -> {reply}");
        }
        // Malformed frames: structured error, connection stays up.
        let reply = rt(&mut conn, &mut reader, r#"{"op":"open""#);
        assert!(reply.contains(r#""kind":"parse""#), "{reply}");
        let reply = rt(
            &mut conn,
            &mut reader,
            r#"{"op":"event","stream":"alpha","type":"deliver","message":99}"#,
        );
        assert!(reply.contains(r#""kind":"event""#), "{reply}");

        let queries = [
            r#"{"op":"query","stream":"alpha","what":"untrackable"}"#,
            r#"{"op":"query","stream":"alpha","what":"recovery-line"}"#,
            r#"{"op":"query","stream":"alpha","what":"max-consistent","members":[[1,1]]}"#,
            r#"{"op":"query","stream":"beta","what":"min-consistent","members":[[0,1]]}"#,
            r#"{"op":"streams"}"#,
        ];
        let before: Vec<String> = queries
            .iter()
            .map(|q| rt(&mut conn, &mut reader, q))
            .collect();

        let reply = rt(&mut conn, &mut reader, r#"{"op":"shutdown"}"#);
        assert!(reply.contains(r#""persisted":2"#), "{reply}");
        daemon.join().expect("daemon thread").expect("daemon run");

        // Restart with a different worker count; answers must not change.
        let server = Server::bind(ServerConfig {
            endpoint: Endpoint::Tcp("127.0.0.1:0".to_string()),
            workers: 5,
            snapshot_path: Some(snapshot.clone()),
        })
        .expect("rebind");
        assert_eq!(server.restored_streams(), 2);
        let addr = server.local_addr().expect("tcp addr");
        let daemon = std::thread::spawn(move || server.run());
        let mut conn = TcpStream::connect(addr).expect("reconnect");
        let mut reader = BufReader::new(conn.try_clone().expect("clone"));
        let after: Vec<String> = queries
            .iter()
            .map(|q| rt(&mut conn, &mut reader, q))
            .collect();
        assert_eq!(before, after);
        rt(&mut conn, &mut reader, r#"{"op":"shutdown"}"#);
        daemon.join().expect("daemon thread").expect("daemon run");
        let _ = fs::remove_file(&snapshot);
    }

    /// Unix-domain socket variant: bind, ping, shutdown.
    #[test]
    fn unix_socket_serves() {
        let path = std::env::temp_dir().join(format!("rdt-serve-{}.sock", std::process::id()));
        let server = Server::bind(ServerConfig {
            endpoint: Endpoint::Unix(path.clone()),
            workers: 1,
            snapshot_path: None,
        })
        .expect("bind unix");
        let daemon = std::thread::spawn(move || server.run());
        let mut conn = UnixStream::connect(&path).expect("connect unix");
        conn.write_all(b"{\"op\":\"open\",\"stream\":\"u\",\"processes\":2}\n")
            .expect("write");
        let mut reader = BufReader::new(conn.try_clone().expect("clone"));
        let mut reply = String::new();
        reader.read_line(&mut reply).expect("read");
        assert!(reply.starts_with(r#"{"ok":true"#), "{reply}");
        conn.write_all(b"{\"op\":\"shutdown\"}\n").expect("write");
        reply.clear();
        reader.read_line(&mut reply).expect("read");
        assert!(reply.contains("stopping"), "{reply}");
        daemon.join().expect("daemon thread").expect("daemon run");
    }
}
