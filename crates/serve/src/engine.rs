//! One tenant stream: an [`IncrementalAnalysis`] plus stream-level
//! metadata, with fully fallible ingest.
//!
//! Every event routes through the engine's `try_append_*` APIs, so an
//! adversarial event order — deliver before send, duplicate delivery,
//! checkpoint on an unknown process — comes back as a structured
//! [`ServeError`] and leaves the stream's state untouched. Queries
//! validate their members before touching the engine for the same
//! reason.

use rdt_causality::{CheckpointId, ProcessId};
use rdt_json::Json;
use rdt_rgraph::IncrementalAnalysis;

use crate::protocol::{ErrorKind, EventKind, QueryKind, ServeError};

/// Stream snapshot format marker (one per stream inside the daemon
/// document).
pub const STREAM_SNAPSHOT_FORMAT: &str = "rdt-serve-stream";

/// One tenant stream.
#[derive(Debug)]
pub struct StreamEngine {
    engine: IncrementalAnalysis,
    /// Crash events observed (crashes are markers: they report the
    /// recovery line but do not mutate the pattern).
    crashes: u64,
}

fn u32s(values: &[u32]) -> Json {
    Json::Arr(values.iter().map(|&v| Json::U64(u64::from(v))).collect())
}

impl StreamEngine {
    /// Creates an empty stream over `processes` processes. The caller
    /// (the protocol layer) has already validated the bound.
    pub fn new(processes: usize) -> StreamEngine {
        StreamEngine {
            engine: IncrementalAnalysis::new(processes),
            crashes: 0,
        }
    }

    /// Number of processes in the stream.
    pub fn processes(&self) -> usize {
        self.engine.num_processes()
    }

    /// Events accepted so far.
    pub fn events(&self) -> usize {
        self.engine.events_appended()
    }

    /// The current per-process checkpoint frontier.
    fn frontier(&self) -> Vec<u32> {
        (0..self.processes())
            .map(|p| self.engine.last_checkpoint_index(ProcessId::new(p)))
            .collect()
    }

    /// The recovery line: greatest consistent global checkpoint dominated
    /// by the current frontier.
    fn recovery_line(&self) -> Vec<u32> {
        let caps = self.frontier();
        let mut line = vec![0u32; self.processes()];
        self.engine.max_consistent_dominated_into(&caps, &mut line);
        line
    }

    /// Applies one event. On success the returned fields go into the ok
    /// reply; on failure the engine state is untouched.
    pub fn ingest_event(
        &mut self,
        event: &EventKind,
    ) -> Result<Vec<(&'static str, Json)>, ServeError> {
        let event_err =
            |e: rdt_rgraph::AppendError| ServeError::new(ErrorKind::Event, e.to_string());
        match *event {
            EventKind::Checkpoint { process } => {
                let id = self
                    .engine
                    .try_append_checkpoint(ProcessId::new(process))
                    .map_err(event_err)?;
                Ok(vec![("checkpoint", Json::U64(u64::from(id.index)))])
            }
            EventKind::Send { from, to } => {
                let mid = self
                    .engine
                    .try_append_send(ProcessId::new(from), ProcessId::new(to))
                    .map_err(event_err)?;
                Ok(vec![("message", Json::U64(u64::from(mid)))])
            }
            EventKind::Deliver { message } => {
                self.engine.try_append_deliver(message).map_err(event_err)?;
                Ok(vec![])
            }
            EventKind::Crash { process } => {
                if process >= self.processes() {
                    return Err(ServeError::new(
                        ErrorKind::Event,
                        format!(
                            "process {process} out of range (stream has {})",
                            self.processes()
                        ),
                    ));
                }
                self.crashes += 1;
                Ok(vec![
                    ("crashes", Json::U64(self.crashes)),
                    ("line", u32s(&self.recovery_line())),
                ])
            }
        }
    }

    /// Answers one query. All member validation happens before the engine
    /// is consulted, so invalid members are [`ErrorKind::Query`] errors
    /// rather than panics.
    pub fn answer_query(
        &mut self,
        query: &QueryKind,
    ) -> Result<Vec<(&'static str, Json)>, ServeError> {
        match query {
            QueryKind::Untrackable => Ok(vec![(
                "untrackable",
                Json::U64(self.engine.untrackable_pairs()),
            )]),
            QueryKind::RecoveryLine => Ok(vec![("line", u32s(&self.recovery_line()))]),
            QueryKind::MinConsistent(members) => {
                let ids = self.validate_members(members)?;
                let gc = self.engine.min_consistent_containing(&ids);
                Ok(vec![("global", self.global_json(gc))])
            }
            QueryKind::MaxConsistent(members) => {
                let ids = self.validate_members(members)?;
                let gc = self.engine.max_consistent_containing(&ids);
                Ok(vec![("global", self.global_json(gc))])
            }
        }
    }

    fn validate_members(&self, members: &[(usize, u32)]) -> Result<Vec<CheckpointId>, ServeError> {
        members
            .iter()
            .map(|&(p, idx)| {
                let id = CheckpointId::new(ProcessId::new(p), idx);
                if p >= self.processes() || !self.engine.checkpoint_exists(id) {
                    return Err(ServeError::new(
                        ErrorKind::Query,
                        format!("checkpoint ({p}, {idx}) does not exist"),
                    ));
                }
                Ok(id)
            })
            .collect()
    }

    fn global_json(&self, gc: Option<rdt_rgraph::GlobalCheckpoint>) -> Json {
        match gc {
            None => Json::Null,
            Some(gc) => {
                let indices: Vec<u32> = (0..self.processes())
                    .map(|p| gc.get(ProcessId::new(p)))
                    .collect();
                u32s(&indices)
            }
        }
    }

    /// Compacts the engine to its recovery line and reports what was
    /// reclaimed.
    pub fn compact(&mut self) -> Vec<(&'static str, Json)> {
        let stats = self.engine.compact_to_recovery_line();
        vec![
            ("dropped", Json::U64(stats.dropped_nodes() as u64)),
            ("epoch", Json::U64(self.engine.compaction_epoch())),
        ]
    }

    /// Serializes the stream (engine plus metadata) for the daemon
    /// snapshot document.
    pub fn stream_snapshot(&self, name: &str) -> Json {
        Json::obj([
            ("format", Json::Str(STREAM_SNAPSHOT_FORMAT.to_string())),
            ("name", Json::Str(name.to_string())),
            ("crashes", Json::U64(self.crashes)),
            ("engine", self.engine.snapshot_json()),
        ])
    }

    /// Restores a stream from its snapshot entry; returns its name and
    /// the rebuilt engine. Total: corrupted documents are
    /// [`ErrorKind::Admin`] errors.
    pub fn from_stream_snapshot(doc: &Json) -> Result<(String, StreamEngine), ServeError> {
        let admin = |m: String| ServeError::new(ErrorKind::Admin, m);
        if doc.get("format").and_then(Json::as_str) != Some(STREAM_SNAPSHOT_FORMAT) {
            return Err(admin("stream entry is not an rdt-serve stream".into()));
        }
        let name = doc
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| admin("stream entry has no name".into()))?;
        let crashes = doc
            .get("crashes")
            .and_then(Json::as_u64)
            .ok_or_else(|| admin(format!("stream `{name}`: missing crash counter")))?;
        let engine_doc = doc
            .get("engine")
            .ok_or_else(|| admin(format!("stream `{name}`: missing engine state")))?;
        let engine = IncrementalAnalysis::from_snapshot_json(engine_doc)
            .map_err(|e| admin(format!("stream `{name}`: {e}")))?;
        Ok((name.to_string(), StreamEngine { engine, crashes }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_and_queries() {
        let mut s = StreamEngine::new(2);
        let cp = s
            .ingest_event(&EventKind::Checkpoint { process: 0 })
            .unwrap();
        assert_eq!(cp[0].1, Json::U64(1));
        let send = s.ingest_event(&EventKind::Send { from: 0, to: 1 }).unwrap();
        assert_eq!(send[0].1, Json::U64(0));
        s.ingest_event(&EventKind::Deliver { message: 0 }).unwrap();
        let pairs = s.answer_query(&QueryKind::Untrackable).unwrap();
        assert_eq!(pairs[0].1, Json::U64(0));
        let line = s.answer_query(&QueryKind::RecoveryLine).unwrap();
        assert!(matches!(line[0].1, Json::Arr(_)));
    }

    #[test]
    fn adversarial_events_error_and_leave_state() {
        let mut s = StreamEngine::new(2);
        assert_eq!(
            s.ingest_event(&EventKind::Deliver { message: 0 })
                .unwrap_err()
                .kind,
            ErrorKind::Event
        );
        assert_eq!(
            s.ingest_event(&EventKind::Checkpoint { process: 9 })
                .unwrap_err()
                .kind,
            ErrorKind::Event
        );
        assert_eq!(s.events(), 0);
        // Still functional afterwards.
        s.ingest_event(&EventKind::Send { from: 0, to: 1 }).unwrap();
        assert_eq!(s.events(), 1);
    }

    #[test]
    fn unknown_members_are_query_errors() {
        let mut s = StreamEngine::new(2);
        assert_eq!(
            s.answer_query(&QueryKind::MinConsistent(vec![(0, 5)]))
                .unwrap_err()
                .kind,
            ErrorKind::Query
        );
        assert_eq!(
            s.answer_query(&QueryKind::MaxConsistent(vec![(9, 0)]))
                .unwrap_err()
                .kind,
            ErrorKind::Query
        );
    }

    #[test]
    fn stream_snapshot_roundtrips() {
        let mut s = StreamEngine::new(3);
        s.ingest_event(&EventKind::Checkpoint { process: 0 })
            .unwrap();
        s.ingest_event(&EventKind::Send { from: 0, to: 1 }).unwrap();
        s.ingest_event(&EventKind::Deliver { message: 0 }).unwrap();
        s.ingest_event(&EventKind::Crash { process: 1 }).unwrap();
        let doc = s.stream_snapshot("tenant-a");
        let (name, mut restored) = StreamEngine::from_stream_snapshot(&doc).unwrap();
        assert_eq!(name, "tenant-a");
        assert_eq!(
            restored.stream_snapshot("tenant-a").to_string(),
            doc.to_string()
        );
        assert_eq!(
            restored.answer_query(&QueryKind::Untrackable).unwrap(),
            s.answer_query(&QueryKind::Untrackable).unwrap()
        );
    }
}
