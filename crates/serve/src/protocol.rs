//! The `rdt-serve` wire protocol: newline-delimited JSON frames.
//!
//! Every request is one JSON object on one line; every reply is one JSON
//! object on one line. Success replies carry `"ok": true` plus
//! op-specific fields; failures carry `"ok": false` and a structured
//! `"error"` object with a machine-readable `kind` from the taxonomy in
//! [`ErrorKind`]. Parsing is **total**: any byte sequence — truncated
//! escapes, invalid UTF-8, wrong shapes — produces an error reply, never
//! a panic, so one hostile tenant cannot take the daemon down.

use rdt_json::Json;

/// Most processes a single stream may declare. Engine state is `O(n²)`
/// per event in the worst case, so this bounds per-tenant memory.
pub const MAX_PROCESSES: usize = 512;

/// Most concurrently open streams across all tenants.
pub const MAX_STREAMS: usize = 4096;

/// Longest accepted request line, in bytes (newline included).
pub const MAX_LINE_BYTES: usize = 1 << 20;

/// Longest accepted stream name, in bytes.
pub const MAX_NAME_BYTES: usize = 200;

/// The error taxonomy. `kind` in every error reply is one of these, so
/// clients can dispatch without string-matching messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The line is not valid JSON (includes invalid UTF-8 and truncated
    /// escapes).
    Parse,
    /// Valid JSON, but not a well-formed request frame.
    Frame,
    /// The named stream does not exist, already exists, or the name is
    /// unusable.
    Stream,
    /// A well-formed event was rejected by the engine (deliver before
    /// send, duplicate delivery, process out of range).
    Event,
    /// A well-formed query cannot be answered (unknown member
    /// checkpoint).
    Query,
    /// A configured resource bound was hit (process count, stream count,
    /// line length).
    Limit,
    /// A daemon administration failure (snapshot persistence, shard
    /// plumbing).
    Admin,
}

impl ErrorKind {
    /// The wire name of the kind.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorKind::Parse => "parse",
            ErrorKind::Frame => "frame",
            ErrorKind::Stream => "stream",
            ErrorKind::Event => "event",
            ErrorKind::Query => "query",
            ErrorKind::Limit => "limit",
            ErrorKind::Admin => "admin",
        }
    }
}

/// A structured per-request error: taxonomy kind plus a human-readable
/// message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeError {
    /// Which taxonomy bucket the failure falls into.
    pub kind: ErrorKind,
    /// What went wrong, for humans.
    pub message: String,
}

impl ServeError {
    /// Builds an error.
    pub fn new(kind: ErrorKind, message: impl Into<String>) -> ServeError {
        ServeError {
            kind,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.kind.as_str(), self.message)
    }
}

impl std::error::Error for ServeError {}

/// One tenant event, exactly the four shapes of ROADMAP item 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// A local checkpoint of `process`.
    Checkpoint {
        /// The checkpointing process.
        process: usize,
    },
    /// A message send; the reply carries the daemon-assigned handle.
    Send {
        /// Sending process.
        from: usize,
        /// Receiving process.
        to: usize,
    },
    /// Delivery of the message with handle `message`.
    Deliver {
        /// Handle from the send reply.
        message: u32,
    },
    /// A crash of `process`: bumps the stream's crash counter and
    /// returns the recovery line the tenant must roll back to.
    Crash {
        /// The crashed process.
        process: usize,
    },
}

/// One live query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryKind {
    /// Running count of reachable-but-untrackable checkpoint pairs.
    Untrackable,
    /// The recovery line: greatest consistent global checkpoint dominated
    /// by the current per-process frontier.
    RecoveryLine,
    /// Minimum consistent global checkpoint containing the members.
    MinConsistent(Vec<(usize, u32)>),
    /// Maximum consistent global checkpoint containing the members.
    MaxConsistent(Vec<(usize, u32)>),
}

/// A parsed request frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Create a stream with `processes` processes.
    Open {
        /// Stream name.
        stream: String,
        /// Number of processes (1..=[`MAX_PROCESSES`]).
        processes: usize,
    },
    /// Append one event to a stream.
    Event {
        /// Stream name.
        stream: String,
        /// The event.
        event: EventKind,
    },
    /// Answer one query on a stream.
    Query {
        /// Stream name.
        stream: String,
        /// The query.
        query: QueryKind,
    },
    /// Compact the stream's engine to its recovery line.
    Compact {
        /// Stream name.
        stream: String,
    },
    /// Drop a stream and free its engine.
    Close {
        /// Stream name.
        stream: String,
    },
    /// List open streams (sorted by name).
    Streams,
    /// Persist a snapshot of every stream to the daemon's snapshot path.
    Snapshot,
    /// Liveness check.
    Ping,
    /// Snapshot (when configured) and stop the daemon.
    Shutdown,
}

impl Request {
    /// The stream this request is scoped to, if any.
    pub fn stream(&self) -> Option<&str> {
        match self {
            Request::Open { stream, .. }
            | Request::Event { stream, .. }
            | Request::Query { stream, .. }
            | Request::Compact { stream }
            | Request::Close { stream } => Some(stream),
            Request::Streams | Request::Snapshot | Request::Ping | Request::Shutdown => None,
        }
    }
}

fn frame_err(message: impl Into<String>) -> ServeError {
    ServeError::new(ErrorKind::Frame, message)
}

fn need_str<'a>(obj: &'a Json, key: &str) -> Result<&'a str, ServeError> {
    obj.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| frame_err(format!("missing string field `{key}`")))
}

fn need_u64(obj: &Json, key: &str) -> Result<u64, ServeError> {
    match obj.get(key) {
        Some(&Json::U64(v)) => Ok(v),
        _ => Err(frame_err(format!("missing unsigned integer field `{key}`"))),
    }
}

fn need_usize(obj: &Json, key: &str) -> Result<usize, ServeError> {
    usize::try_from(need_u64(obj, key)?)
        .map_err(|_| frame_err(format!("field `{key}` out of range")))
}

fn need_u32(obj: &Json, key: &str) -> Result<u32, ServeError> {
    u32::try_from(need_u64(obj, key)?).map_err(|_| frame_err(format!("field `{key}` out of range")))
}

fn need_stream(obj: &Json) -> Result<String, ServeError> {
    let name = need_str(obj, "stream")?;
    if name.is_empty() {
        return Err(ServeError::new(ErrorKind::Stream, "stream name is empty"));
    }
    if name.len() > MAX_NAME_BYTES {
        return Err(ServeError::new(
            ErrorKind::Limit,
            format!("stream name longer than {MAX_NAME_BYTES} bytes"),
        ));
    }
    Ok(name.to_string())
}

fn need_members(obj: &Json) -> Result<Vec<(usize, u32)>, ServeError> {
    let arr = obj
        .get("members")
        .and_then(Json::as_array)
        .ok_or_else(|| frame_err("missing array field `members`"))?;
    let mut members = Vec::with_capacity(arr.len());
    for entry in arr {
        let pair = entry
            .as_array()
            .filter(|p| p.len() == 2)
            .ok_or_else(|| frame_err("`members` entries must be [process, checkpoint] pairs"))?;
        let p = pair[0]
            .as_u64()
            .and_then(|v| usize::try_from(v).ok())
            .ok_or_else(|| frame_err("`members` process is not an unsigned integer"))?;
        let idx = pair[1]
            .as_u64()
            .and_then(|v| u32::try_from(v).ok())
            .ok_or_else(|| frame_err("`members` checkpoint is not an unsigned integer"))?;
        members.push((p, idx));
    }
    if members.is_empty() {
        return Err(frame_err("`members` must not be empty"));
    }
    Ok(members)
}

/// Parses one request line. Total: every byte input yields a request or a
/// [`ServeError`] with the right taxonomy kind.
pub fn parse_request(line: &[u8]) -> Result<Request, ServeError> {
    let doc =
        Json::parse_bytes(line).map_err(|e| ServeError::new(ErrorKind::Parse, e.to_string()))?;
    if !matches!(doc, Json::Obj(_)) {
        return Err(frame_err("request is not a JSON object"));
    }
    let op = need_str(&doc, "op")?;
    match op {
        "open" => {
            let stream = need_stream(&doc)?;
            let processes = need_usize(&doc, "processes")?;
            if processes == 0 {
                return Err(frame_err("`processes` must be at least 1"));
            }
            if processes > MAX_PROCESSES {
                return Err(ServeError::new(
                    ErrorKind::Limit,
                    format!("`processes` exceeds the maximum of {MAX_PROCESSES}"),
                ));
            }
            Ok(Request::Open { stream, processes })
        }
        "event" => {
            let stream = need_stream(&doc)?;
            let event = match need_str(&doc, "type")? {
                "checkpoint" => EventKind::Checkpoint {
                    process: need_usize(&doc, "process")?,
                },
                "send" => EventKind::Send {
                    from: need_usize(&doc, "from")?,
                    to: need_usize(&doc, "to")?,
                },
                "deliver" => EventKind::Deliver {
                    message: need_u32(&doc, "message")?,
                },
                "crash" => EventKind::Crash {
                    process: need_usize(&doc, "process")?,
                },
                other => {
                    return Err(frame_err(format!("unknown event type `{other}`")));
                }
            };
            Ok(Request::Event { stream, event })
        }
        "query" => {
            let stream = need_stream(&doc)?;
            let query = match need_str(&doc, "what")? {
                "untrackable" => QueryKind::Untrackable,
                "recovery-line" => QueryKind::RecoveryLine,
                "min-consistent" => QueryKind::MinConsistent(need_members(&doc)?),
                "max-consistent" => QueryKind::MaxConsistent(need_members(&doc)?),
                other => {
                    return Err(frame_err(format!("unknown query `{other}`")));
                }
            };
            Ok(Request::Query { stream, query })
        }
        "compact" => Ok(Request::Compact {
            stream: need_stream(&doc)?,
        }),
        "close" => Ok(Request::Close {
            stream: need_stream(&doc)?,
        }),
        "streams" => Ok(Request::Streams),
        "snapshot" => Ok(Request::Snapshot),
        "ping" => Ok(Request::Ping),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(frame_err(format!("unknown op `{other}`"))),
    }
}

/// Builds a success reply: `{"ok": true, ...fields}`.
pub fn ok_reply(fields: Vec<(&'static str, Json)>) -> Json {
    let mut pairs = vec![("ok".to_string(), Json::Bool(true))];
    pairs.extend(fields.into_iter().map(|(k, v)| (k.to_string(), v)));
    Json::Obj(pairs)
}

/// Builds an error reply: `{"ok": false, "stream": ..., "error": {"kind":
/// ..., "message": ...}}`. `stream` is included when the failing request
/// named one, so multiplexing clients can route the error.
pub fn error_reply(stream: Option<&str>, error: &ServeError) -> Json {
    let mut pairs = vec![("ok".to_string(), Json::Bool(false))];
    if let Some(name) = stream {
        pairs.push(("stream".to_string(), Json::Str(name.to_string())));
    }
    pairs.push((
        "error".to_string(),
        Json::obj([
            ("kind", Json::Str(error.kind.as_str().to_string())),
            ("message", Json::Str(error.message.clone())),
        ]),
    ));
    Json::Obj(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_op_set() {
        let open = parse_request(br#"{"op":"open","stream":"s","processes":3}"#).unwrap();
        assert_eq!(
            open,
            Request::Open {
                stream: "s".into(),
                processes: 3
            }
        );
        let send =
            parse_request(br#"{"op":"event","stream":"s","type":"send","from":0,"to":1}"#).unwrap();
        assert_eq!(
            send,
            Request::Event {
                stream: "s".into(),
                event: EventKind::Send { from: 0, to: 1 }
            }
        );
        let q = parse_request(
            br#"{"op":"query","stream":"s","what":"min-consistent","members":[[0,1]]}"#,
        )
        .unwrap();
        assert_eq!(
            q,
            Request::Query {
                stream: "s".into(),
                query: QueryKind::MinConsistent(vec![(0, 1)])
            }
        );
        assert_eq!(parse_request(br#"{"op":"ping"}"#).unwrap(), Request::Ping);
        assert_eq!(
            parse_request(br#"{"op":"shutdown"}"#).unwrap(),
            Request::Shutdown
        );
    }

    #[test]
    fn malformed_frames_map_to_taxonomy_kinds() {
        // Byte soup, invalid UTF-8, and the regression truncated escape.
        for bytes in [&b"\xff\xfe\x00"[..], b"{", b"\"\\u12\"", b"[1,2,3", b""] {
            let err = parse_request(bytes).unwrap_err();
            assert_eq!(err.kind, ErrorKind::Parse, "{bytes:?}");
        }
        // Valid JSON, invalid frames.
        assert_eq!(parse_request(b"[1,2]").unwrap_err().kind, ErrorKind::Frame);
        assert_eq!(
            parse_request(br#"{"op":"warp"}"#).unwrap_err().kind,
            ErrorKind::Frame
        );
        assert_eq!(
            parse_request(br#"{"op":"open","stream":"s"}"#)
                .unwrap_err()
                .kind,
            ErrorKind::Frame
        );
        assert_eq!(
            parse_request(br#"{"op":"open","stream":"s","processes":0}"#)
                .unwrap_err()
                .kind,
            ErrorKind::Frame
        );
        assert_eq!(
            parse_request(br#"{"op":"open","stream":"s","processes":100000}"#)
                .unwrap_err()
                .kind,
            ErrorKind::Limit
        );
        assert_eq!(
            parse_request(br#"{"op":"open","stream":"","processes":2}"#)
                .unwrap_err()
                .kind,
            ErrorKind::Stream
        );
        // Negative numbers are not unsigned fields.
        assert_eq!(
            parse_request(br#"{"op":"event","stream":"s","type":"deliver","message":-1}"#)
                .unwrap_err()
                .kind,
            ErrorKind::Frame
        );
    }

    #[test]
    fn replies_have_the_documented_shape() {
        let ok = ok_reply(vec![("message", Json::U64(7))]);
        assert_eq!(ok.to_string(), r#"{"ok":true,"message":7}"#);
        let err = error_reply(
            Some("s"),
            &ServeError::new(ErrorKind::Event, "message 7 was never sent"),
        );
        assert_eq!(
            err.to_string(),
            r#"{"ok":false,"stream":"s","error":{"kind":"event","message":"message 7 was never sent"}}"#
        );
    }
}
