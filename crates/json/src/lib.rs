//! Dependency-free JSON for the RDT workspace.
//!
//! The build container has no crates.io access, so `serde`/`serde_json`
//! are unavailable; this crate provides the small JSON kernel the
//! workspace needs instead:
//!
//! * [`Json`] — an ordered JSON value (object keys keep insertion order,
//!   so emitted reports are stable and diffable),
//! * [`Json::pretty`] / [`Display`](std::fmt::Display) — pretty and
//!   compact writers,
//! * [`Json::parse`] — a strict recursive-descent parser,
//! * [`ToJson`] — the serialization trait experiment results and traces
//!   implement by hand (tuples and `Vec`s compose automatically).
//!
//! # Example
//!
//! ```rust
//! use rdt_json::{Json, ToJson};
//!
//! let value = Json::obj([("name", "fig7".to_json()), ("rows", vec![1u64, 2].to_json())]);
//! let text = value.pretty();
//! assert!(text.contains("\"name\": \"fig7\""));
//! assert_eq!(Json::parse(&text).unwrap(), value);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

/// An ordered JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (emitted without a fraction).
    U64(u64),
    /// A signed integer (emitted without a fraction).
    I64(i64),
    /// A finite float (non-finite values are emitted as `null`).
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys keep insertion order.
    Obj(Vec<(String, Json)>),
}

/// A parse error with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset the parser stopped at.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Looks a key up in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a `u64`, if integral and in range.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::U64(v) => Some(v),
            Json::I64(v) => u64::try_from(v).ok(),
            Json::F64(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => Some(v as u64),
            _ => None,
        }
    }

    /// The value as an `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::U64(v) => Some(v as f64),
            Json::I64(v) => Some(v as f64),
            Json::F64(v) => Some(v),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Pretty-prints with two-space indentation (serde_json style).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(0));
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => out.push_str(&v.to_string()),
            Json::I64(v) => out.push_str(&v.to_string()),
            Json::F64(v) => {
                if v.is_finite() {
                    // `{:?}` keeps a fraction ("1.0") so floats re-parse as
                    // floats.
                    out.push_str(&format!("{v:?}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    match indent {
                        Some(level) => {
                            out.push('\n');
                            push_indent(out, level + 1);
                            item.write(out, Some(level + 1));
                        }
                        None => item.write(out, None),
                    }
                }
                if let Some(level) = indent {
                    out.push('\n');
                    push_indent(out, level);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    match indent {
                        Some(level) => {
                            out.push('\n');
                            push_indent(out, level + 1);
                            write_escaped(out, key);
                            out.push_str(": ");
                            value.write(out, Some(level + 1));
                        }
                        None => {
                            write_escaped(out, key);
                            out.push(':');
                            value.write(out, None);
                        }
                    }
                }
                if let Some(level) = indent {
                    out.push('\n');
                    push_indent(out, level);
                }
                out.push('}');
            }
        }
    }

    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        Json::parse_bytes(text.as_bytes())
    }

    /// Parses a complete JSON document from raw bytes.
    ///
    /// The parser is **total**: for *any* byte input it returns either a
    /// value or a [`JsonError`] — never a panic. Invalid UTF-8 inside a
    /// string, truncated `\u` escapes, lone surrogate halves, and
    /// pathological nesting (deeper than [`MAX_DEPTH`]) are all reported
    /// as errors with the byte offset the parser stopped at. This is the
    /// entry point for untrusted input (socket frames, files from other
    /// tools); [`Json::parse`] wraps it for already-valid UTF-8.
    pub fn parse_bytes(bytes: &[u8]) -> Result<Json, JsonError> {
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(err(pos, "trailing characters after the document"));
        }
        Ok(value)
    }
}

/// Maximum container nesting [`Json::parse_bytes`] accepts. The parser
/// recurses per nesting level, so unbounded depth would let a short
/// adversarial input (`[[[[…`) overflow the stack; 128 levels is far
/// beyond anything the workspace's writers emit.
pub const MAX_DEPTH: usize = 128;

impl fmt::Display for Json {
    /// Compact form (no whitespace).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out, None);
        f.write_str(&out)
    }
}

fn push_indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// -------------------------------------------------------------- parser ---

fn err(offset: usize, message: impl Into<String>) -> JsonError {
    JsonError {
        offset,
        message: message.into(),
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), JsonError> {
    if *pos < bytes.len() && bytes[*pos] == byte {
        *pos += 1;
        Ok(())
    } else {
        Err(err(*pos, format!("expected {:?}", byte as char)))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'n') => parse_keyword(bytes, pos, "null", Json::Null),
        Some(b't') => parse_keyword(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b'[') => {
            if depth >= MAX_DEPTH {
                return Err(err(*pos, "nesting deeper than the supported maximum"));
            }
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos, depth + 1)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(err(*pos, "expected ',' or ']' in array")),
                }
            }
        }
        Some(b'{') => {
            if depth >= MAX_DEPTH {
                return Err(err(*pos, "nesting deeper than the supported maximum"));
            }
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos, depth + 1)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(err(*pos, "expected ',' or '}' in object")),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(
    bytes: &[u8],
    pos: &mut usize,
    keyword: &str,
    value: Json,
) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(keyword.as_bytes()) {
        *pos += keyword.len();
        Ok(value)
    } else {
        Err(err(*pos, format!("expected `{keyword}`")))
    }
}

/// Reads the 4 hex digits of a `\uXXXX` escape at `*pos` (positioned on
/// the `u`). Strict: exactly four ASCII hex digits — `from_str_radix`
/// would also accept a leading `+`, so the digits are validated by hand.
fn parse_hex4(bytes: &[u8], pos: &mut usize) -> Result<u32, JsonError> {
    let hex = bytes
        .get(*pos + 1..*pos + 5)
        .ok_or_else(|| err(*pos, "truncated \\u escape"))?;
    let mut code = 0u32;
    for &b in hex {
        let digit = match b {
            b'0'..=b'9' => u32::from(b - b'0'),
            b'a'..=b'f' => u32::from(b - b'a') + 10,
            b'A'..=b'F' => u32::from(b - b'A') + 10,
            _ => return Err(err(*pos, "invalid \\u escape")),
        };
        code = code << 4 | digit;
    }
    *pos += 4;
    Ok(code)
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let escape_start = *pos - 1;
                        let code = parse_hex4(bytes, pos)?;
                        let c = match code {
                            // High surrogate: must be followed by
                            // `\uDC00`–`\uDFFF`; combine the pair.
                            0xD800..=0xDBFF => {
                                if bytes.get(*pos + 1..*pos + 3) != Some(b"\\u".as_slice()) {
                                    return Err(err(
                                        escape_start,
                                        "unpaired high surrogate in \\u escape",
                                    ));
                                }
                                *pos += 2;
                                let low = parse_hex4(bytes, pos)?;
                                if !(0xDC00..=0xDFFF).contains(&low) {
                                    return Err(err(
                                        escape_start,
                                        "high surrogate not followed by a low surrogate",
                                    ));
                                }
                                let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined).ok_or_else(|| {
                                    err(escape_start, "invalid surrogate pair in \\u escape")
                                })?
                            }
                            0xDC00..=0xDFFF => {
                                return Err(err(
                                    escape_start,
                                    "unpaired low surrogate in \\u escape",
                                ));
                            }
                            _ => char::from_u32(code)
                                .ok_or_else(|| err(escape_start, "invalid \\u escape"))?,
                        };
                        out.push(c);
                    }
                    _ => return Err(err(*pos, "invalid escape")),
                }
                *pos += 1;
            }
            Some(&first) => {
                // Consume one UTF-8 character, decoding incrementally
                // from the raw bytes so a partial trailing sequence is a
                // reported error, not a panic.
                let len = match first {
                    0x00..=0x1F => return Err(err(*pos, "unescaped control character")),
                    0x20..=0x7F => 1,
                    0xC2..=0xDF => 2,
                    0xE0..=0xEF => 3,
                    0xF0..=0xF4 => 4,
                    _ => return Err(err(*pos, "invalid UTF-8")),
                };
                let seq = bytes
                    .get(*pos..*pos + len)
                    .ok_or_else(|| err(*pos, "invalid UTF-8"))?;
                let s = std::str::from_utf8(seq).map_err(|_| err(*pos, "invalid UTF-8"))?;
                out.push_str(s);
                *pos += len;
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    // The scanned range is digits/sign/dot/exponent bytes only, so this
    // conversion cannot fail; still, stay total rather than `expect`.
    let text =
        std::str::from_utf8(&bytes[start..*pos]).map_err(|_| err(start, "invalid number"))?;
    if text.is_empty() || text == "-" {
        return Err(err(start, "expected a value"));
    }
    if !is_float {
        if let Ok(v) = text.parse::<u64>() {
            return Ok(Json::U64(v));
        }
        if let Ok(v) = text.parse::<i64>() {
            return Ok(Json::I64(v));
        }
    }
    text.parse::<f64>()
        .map(Json::F64)
        .map_err(|_| err(start, format!("invalid number `{text}`")))
}

// -------------------------------------------------------------- ToJson ---

/// Hand-written serialization into [`Json`].
pub trait ToJson {
    /// Converts `self` into a JSON value.
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::F64(*self)
    }
}

macro_rules! to_json_unsigned {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::U64(*self as u64)
            }
        }
    )*};
}
to_json_unsigned!(u8, u16, u32, u64, usize);

macro_rules! to_json_signed {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::I64(*self as i64)
            }
        }
    )*};
}
to_json_signed!(i8, i16, i32, i64);

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (*self).to_json()
    }
}

macro_rules! to_json_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: ToJson),+> ToJson for ($($name,)+) {
            fn to_json(&self) -> Json {
                Json::Arr(vec![$(self.$idx.to_json()),+])
            }
        }
    )*};
}
to_json_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_matches_serde_style() {
        let value = Json::obj([
            ("name", "figY".to_json()),
            ("rows", Json::Arr(vec![Json::U64(1), Json::U64(2)])),
            ("empty", Json::Arr(vec![])),
        ]);
        let text = value.pretty();
        assert!(text.contains("\"name\": \"figY\""), "{text}");
        assert!(text.starts_with("{\n  \"name\""), "{text}");
        assert!(text.contains("\"empty\": []"), "{text}");
    }

    #[test]
    fn roundtrip_compact_and_pretty() {
        let value = Json::obj([
            ("a", Json::F64(0.5)),
            ("b", Json::I64(-3)),
            (
                "c",
                Json::Arr(vec![
                    Json::Null,
                    Json::Bool(true),
                    Json::Str("x\"y\n".into()),
                ]),
            ),
            ("d", Json::Obj(vec![])),
        ]);
        assert_eq!(Json::parse(&value.to_string()).unwrap(), value);
        assert_eq!(Json::parse(&value.pretty()).unwrap(), value);
    }

    #[test]
    fn floats_keep_their_fraction() {
        assert_eq!(Json::F64(1.0).to_string(), "1.0");
        assert_eq!(Json::parse("1.0").unwrap(), Json::F64(1.0));
        assert_eq!(Json::parse("7").unwrap(), Json::U64(7));
        assert_eq!(Json::parse("-7").unwrap(), Json::I64(-7));
        assert_eq!(Json::parse("1e3").unwrap(), Json::F64(1000.0));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("true false").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn accessors() {
        let value = Json::parse(r#"{"n": 3, "xs": [1.5], "s": "hi", "flag": false}"#).unwrap();
        assert_eq!(value.get("n").and_then(Json::as_u64), Some(3));
        assert_eq!(
            value.get("xs").and_then(Json::as_array).map(<[Json]>::len),
            Some(1)
        );
        assert_eq!(value.get("s").and_then(Json::as_str), Some("hi"));
        assert_eq!(value.get("flag").and_then(Json::as_bool), Some(false));
        assert_eq!(value.get("missing"), None);
    }

    #[test]
    fn tuples_and_vecs_compose() {
        let rows: Vec<(String, f64, u64)> = vec![("bhmr".into(), 0.25, 4)];
        let json = rows.to_json();
        assert_eq!(json.to_string(), r#"[["bhmr",0.25,4]]"#);
    }

    #[test]
    fn escapes_roundtrip() {
        let s = "line\nquote\"back\\slash\ttab\u{1}";
        let json = Json::Str(s.to_string());
        assert_eq!(Json::parse(&json.to_string()).unwrap(), json);
    }

    /// Regression: truncated `\u` escapes used to reach
    /// `rest.chars().next().unwrap()` territory / slice past the end.
    /// Every prefix of a valid escape must be an error, not a panic.
    #[test]
    fn truncated_unicode_escape_is_an_error() {
        for input in [
            r#""\u"#,
            r#""\u1"#,
            r#""\u12"#,
            r#""\u123"#,
            r#""\u123"#,
            "\"\\u12\"",
            "\"\\u\"",
        ] {
            assert!(Json::parse(input).is_err(), "input {input:?}");
        }
    }

    /// Regression: `u32::from_str_radix` accepts a leading `+`, which the
    /// old parser would have treated as a valid escape digit run.
    #[test]
    fn unicode_escape_digits_are_strict() {
        assert!(Json::parse(r#""\u+123""#).is_err());
        assert!(Json::parse(r#""\u 123""#).is_err());
        assert!(Json::parse(r#""\u12g4""#).is_err());
        assert_eq!(
            Json::parse(r#""\u0041""#).unwrap(),
            Json::Str("A".to_string())
        );
        assert_eq!(
            Json::parse(r#""\uFFFD""#).unwrap(),
            Json::Str("\u{FFFD}".to_string())
        );
    }

    /// Lone surrogate halves are errors; a proper pair combines into one
    /// astral-plane character.
    #[test]
    fn surrogate_halves_and_pairs() {
        assert!(Json::parse(r#""\uD800""#).is_err());
        assert!(Json::parse(r#""\uDBFF""#).is_err());
        assert!(Json::parse(r#""\uDC00""#).is_err());
        assert!(Json::parse(r#""\uDFFF""#).is_err());
        assert!(Json::parse(r#""\uD800\uD800""#).is_err());
        assert!(Json::parse(r#""\uD800x""#).is_err());
        assert!(Json::parse(r#""\uD800\n""#).is_err());
        assert!(Json::parse(r#""\uD834\u""#).is_err());
        // U+1D11E MUSICAL SYMBOL G CLEF = \uD834\uDD1E.
        assert_eq!(
            Json::parse(r#""\uD834\uDD1E""#).unwrap(),
            Json::Str("\u{1D11E}".to_string())
        );
    }

    /// `parse_bytes` is total on invalid UTF-8: truncated multi-byte
    /// sequences, stray continuation bytes, and overlong forms all error.
    #[test]
    fn parse_bytes_rejects_invalid_utf8() {
        assert!(Json::parse_bytes(b"\"\xE2\x82\"").is_err());
        assert!(Json::parse_bytes(b"\"\x80\"").is_err());
        assert!(Json::parse_bytes(b"\"\xC0\xAF\"").is_err());
        assert!(Json::parse_bytes(b"\"\xF5\x80\x80\x80\"").is_err());
        assert!(Json::parse_bytes(b"\"\xE2\x82").is_err());
        // Valid multi-byte content still round-trips.
        assert_eq!(
            Json::parse_bytes("\"\u{20AC}\"".as_bytes()).unwrap(),
            Json::Str("\u{20AC}".to_string())
        );
    }

    /// Deep nesting is bounded: an adversarial `[[[[…` input returns an
    /// error instead of overflowing the parser's stack.
    #[test]
    fn nesting_depth_is_bounded() {
        let ok = "[".repeat(MAX_DEPTH) + &"]".repeat(MAX_DEPTH);
        assert!(Json::parse(&ok).is_ok());
        let deep = "[".repeat(100_000);
        assert!(Json::parse(&deep).is_err());
        let deep_obj = "{\"k\":".repeat(100_000);
        assert!(Json::parse(&deep_obj).is_err());
    }
}
