//! Exhaustive enumeration of checkpoint-and-communication skeletons.
//!
//! A *skeleton* is everything about an execution the driver controls:
//! each process's local sequence of basic checkpoints, sends (with
//! destination) and deliveries, plus the matching of every delivery to a
//! send. Forced checkpoints are **not** enumerated — protocols insert
//! them during replay. The enumeration is exhaustive up to a [`Scope`]:
//! every send count `0..=m`, every destination assignment, every subset
//! of messages delivered (the rest stay in transit), every interleaving
//! of deliveries with the local events, every placement of up to `b`
//! basic checkpoints.
//!
//! Two reductions keep the space tractable without losing coverage:
//!
//! * **Pattern-level, not schedule-level.** A protocol's piggyback is a
//!   function of sender-local history alone, so the replay outcome
//!   depends only on the skeleton — *which* global interleaving realizes
//!   it is irrelevant. Enumerating skeletons (and replaying one canonical
//!   linearization each) therefore covers all delivery interleavings at a
//!   fraction of the cost of a global-schedule tree
//!   (cf. `rdt::explore`, the naive ancestor of this module).
//! * **Symmetry pruning.** All protocols are process-symmetric, so of the
//!   up-to-`n!` relabelings of a skeleton only the lexicographically
//!   minimal encoding (the *canonical form*) is replayed; the rest are
//!   counted as pruned.

use rdt_causality::ProcessId;
use rdt_rgraph::{Pattern, PatternBuilder, PatternError};

use crate::Scope;

/// A layout slot: a local event whose delivery matching is not yet fixed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum LSlot {
    /// A basic (autonomous) checkpoint.
    Basic,
    /// A send to `dest`.
    Send {
        /// Destination process index.
        dest: usize,
    },
    /// A delivery of some not-yet-chosen incoming message.
    Deliver,
}

/// Per-process event sequences with destinations but unmatched
/// deliveries. One layout is one unit of parallel work; its matchings are
/// enumerated by the worker that picks it up.
#[derive(Debug, Clone)]
pub(crate) struct Layout {
    pub(crate) n: usize,
    pub(crate) lines: Vec<Vec<LSlot>>,
}

/// A fully matched slot: deliveries name their source send as
/// `(src process, ordinal among that process's sends)` — a description
/// that is stable under process relabeling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Slot {
    Basic,
    Send { dest: usize },
    Deliver { src: usize, ord: usize },
}

/// A complete skeleton: layout plus delivery matching.
#[derive(Debug, Clone)]
pub(crate) struct Skeleton {
    pub(crate) n: usize,
    pub(crate) lines: Vec<Vec<Slot>>,
}

/// One abstract driver event of a linearized skeleton.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriverEvent {
    /// `process` takes a basic checkpoint.
    Basic {
        /// The checkpointing process.
        process: usize,
    },
    /// `from` sends message number `message` to `to`.
    Send {
        /// Sender.
        from: usize,
        /// Receiver.
        to: usize,
        /// Message number, in send order.
        message: usize,
    },
    /// `to` delivers message number `message`.
    Deliver {
        /// The delivering process.
        to: usize,
        /// Message number, in send order.
        message: usize,
    },
}

/// A linearized skeleton: the canonical execution order the replay driver
/// walks, with messages numbered in send order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    /// Number of processes.
    pub n: usize,
    /// Events in execution order (lowest-runnable-process-first).
    pub events: Vec<DriverEvent>,
    /// `(from, to)` of every message, indexed by message number.
    pub messages: Vec<(usize, usize)>,
}

impl Schedule {
    /// Compact single-line rendering, e.g. `c0 s0>1#0 d1#0` — enough to
    /// reproduce a counterexample by hand.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for event in &self.events {
            if !out.is_empty() {
                out.push(' ');
            }
            match *event {
                DriverEvent::Basic { process } => out.push_str(&format!("c{process}")),
                DriverEvent::Send { from, to, message } => {
                    out.push_str(&format!("s{from}>{to}#{message}"));
                }
                DriverEvent::Deliver { to, message } => out.push_str(&format!("d{to}#{message}")),
            }
        }
        out
    }

    /// The same schedule with every process relabeled by `perm`
    /// (`perm[old] = new`): events keep their order, messages keep their
    /// send-order numbering, only the process identities change. The
    /// result is a valid linearization of the relabeled skeleton, so it
    /// replays — tests use it to walk an orbit from its canonical
    /// representative.
    pub fn relabeled(&self, perm: &[usize]) -> Schedule {
        let events = self
            .events
            .iter()
            .map(|event| match *event {
                DriverEvent::Basic { process } => DriverEvent::Basic {
                    process: perm[process],
                },
                DriverEvent::Send { from, to, message } => DriverEvent::Send {
                    from: perm[from],
                    to: perm[to],
                    message,
                },
                DriverEvent::Deliver { to, message } => DriverEvent::Deliver {
                    to: perm[to],
                    message,
                },
            })
            .collect();
        let messages = self
            .messages
            .iter()
            .map(|&(from, to)| (perm[from], perm[to]))
            .collect();
        Schedule {
            n: self.n,
            events,
            messages,
        }
    }

    /// Builds the protocol-free pattern of this schedule (basic
    /// checkpoints only — what the enumerator guarantees about the space;
    /// protocol replays add forced checkpoints on top).
    ///
    /// # Errors
    ///
    /// Returns an error if the schedule is not a valid execution order —
    /// impossible for schedules produced by the enumerator.
    pub fn to_pattern(&self) -> Result<Pattern, PatternError> {
        let mut builder = PatternBuilder::new(self.n);
        let mut mids = Vec::with_capacity(self.messages.len());
        for event in &self.events {
            match *event {
                DriverEvent::Basic { process } => {
                    builder.checkpoint(ProcessId::new(process));
                }
                DriverEvent::Send { from, to, .. } => {
                    mids.push(builder.send(ProcessId::new(from), ProcessId::new(to)));
                }
                DriverEvent::Deliver { message, .. } => {
                    builder.deliver(mids[message])?;
                }
            }
        }
        builder.build()
    }
}

/// Tallies of one enumeration pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EnumerationCounts {
    /// Complete skeletons generated (layout × matching), before any
    /// reduction.
    pub structures: u64,
    /// Skeletons whose identity relabeling is the minimal encoding; only
    /// these proceed.
    pub canonical: u64,
    /// Skeletons discarded because a relabeling has a smaller encoding
    /// (an isomorphic skeleton is visited instead).
    pub pruned_symmetry: u64,
    /// Canonical skeletons admitting no execution order (e.g. cyclic
    /// delivery-before-send matchings).
    pub unrealizable: u64,
    /// Canonical, realizable skeletons handed to the visitor.
    pub replayable: u64,
}

impl EnumerationCounts {
    /// Accumulates `other` into `self`.
    pub fn absorb(&mut self, other: &EnumerationCounts) {
        self.structures += other.structures;
        self.canonical += other.canonical;
        self.pruned_symmetry += other.pruned_symmetry;
        self.unrealizable += other.unrealizable;
        self.replayable += other.replayable;
    }
}

/// All permutations of `0..n` (identity first), for the canonical-form
/// check. `n <= 4` keeps this at 24 entries.
pub(crate) fn permutations(n: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut current: Vec<usize> = (0..n).collect();
    fn heap(k: usize, current: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if k <= 1 {
            out.push(current.clone());
            return;
        }
        for i in 0..k {
            heap(k - 1, current, out);
            if k.is_multiple_of(2) {
                current.swap(i, k - 1);
            } else {
                current.swap(0, k - 1);
            }
        }
    }
    heap(n, &mut current, &mut out);
    out.sort();
    out
}

/// Enumerates every layout of the scope. Layouts are the parallel work
/// units: cheap to materialize (matchings are expanded per worker) and
/// generated in a deterministic order.
pub(crate) fn enumerate_layouts(scope: &Scope) -> Vec<Layout> {
    let n = scope.processes;
    let mut out = Vec::new();
    for total_sends in 0..=scope.messages {
        let mut lines: Vec<Vec<LSlot>> = vec![Vec::new(); n];
        extend_process(
            n,
            0,
            total_sends,
            total_sends,
            scope.basics,
            &mut lines,
            &mut out,
        );
    }
    out
}

/// Recursively fills the word of process `i`, then moves on to `i + 1`.
/// `sends_left` must reach exactly zero over all processes (each send
/// budget is enumerated separately so no pattern is generated twice);
/// delivery and basic budgets are upper bounds.
fn extend_process(
    n: usize,
    i: usize,
    sends_left: usize,
    delivers_left: usize,
    basics_left: usize,
    lines: &mut Vec<Vec<LSlot>>,
    out: &mut Vec<Layout>,
) {
    if i == n {
        if sends_left == 0 {
            out.push(Layout {
                n,
                lines: lines.clone(),
            });
        }
        return;
    }
    // End process i's word here.
    extend_process(n, i + 1, sends_left, delivers_left, basics_left, lines, out);
    // Or grow it by one slot of each kind.
    if basics_left > 0 {
        lines[i].push(LSlot::Basic);
        extend_process(n, i, sends_left, delivers_left, basics_left - 1, lines, out);
        lines[i].pop();
    }
    if sends_left > 0 {
        for dest in 0..n {
            if dest == i {
                continue;
            }
            lines[i].push(LSlot::Send { dest });
            extend_process(n, i, sends_left - 1, delivers_left, basics_left, lines, out);
            lines[i].pop();
        }
    }
    if delivers_left > 0 {
        lines[i].push(LSlot::Deliver);
        extend_process(n, i, sends_left, delivers_left - 1, basics_left, lines, out);
        lines[i].pop();
    }
}

/// A send slot of a layout, in scan order (process-major, then position).
#[derive(Debug, Clone, Copy)]
pub(crate) struct SendSlot {
    pub(crate) process: usize,
    pub(crate) dest: usize,
    /// Ordinal among `process`'s sends (position order).
    pub(crate) ord: usize,
}

/// Reusable buffers for [`visit_layout`]: one instance per worker (or
/// one for a serial pass), reused across every layout it expands, so the
/// per-structure hot path allocates nothing at all.
pub struct LayoutScratch {
    sends: Vec<SendSlot>,
    /// Destination process of each deliver slot.
    delivers: Vec<usize>,
    used: Vec<bool>,
    chosen: Vec<usize>,
    matching: MatchScratch,
}

impl LayoutScratch {
    pub(crate) fn new(n: usize) -> Self {
        LayoutScratch {
            sends: Vec::new(),
            delivers: Vec::new(),
            used: Vec::new(),
            chosen: Vec::new(),
            matching: MatchScratch::new(n),
        }
    }
}

/// Reusable buffers for the per-structure hot path (skeleton build,
/// canonical-form check, linearization).
pub(crate) struct MatchScratch {
    pub(crate) skeleton: Skeleton,
    identity_perm: Vec<usize>,
    identity: Vec<u32>,
    inverse: Vec<usize>,
    cursor: Vec<usize>,
    /// `msg_of[i][ord]` = message number once send `ord` of process `i`
    /// ran.
    msg_of: Vec<Vec<Option<usize>>>,
    next_ord: Vec<usize>,
    pub(crate) schedule: Schedule,
}

impl MatchScratch {
    pub(crate) fn new(n: usize) -> Self {
        MatchScratch {
            skeleton: Skeleton {
                n,
                lines: vec![Vec::new(); n],
            },
            identity_perm: (0..n).collect(),
            identity: Vec::new(),
            inverse: vec![0; n],
            cursor: vec![0; n],
            msg_of: vec![Vec::new(); n],
            next_ord: vec![0; n],
            schedule: Schedule {
                n,
                events: Vec::new(),
                messages: Vec::new(),
            },
        }
    }
}

/// Expands all matchings of `layout`, applies symmetry pruning and the
/// realizability check, and hands each canonical realizable schedule to
/// `visit`. Returns the tallies of this layout.
pub(crate) fn visit_layout(
    layout: &Layout,
    perms: &[Vec<usize>],
    scratch: &mut LayoutScratch,
    visit: &mut dyn FnMut(&Schedule),
) -> EnumerationCounts {
    let mut counts = EnumerationCounts::default();
    let LayoutScratch {
        sends,
        delivers,
        used,
        chosen,
        matching,
    } = scratch;
    sends.clear();
    delivers.clear();
    for (i, line) in layout.lines.iter().enumerate() {
        let mut ord = 0;
        for slot in line {
            match *slot {
                LSlot::Send { dest } => {
                    sends.push(SendSlot {
                        process: i,
                        dest,
                        ord,
                    });
                    ord += 1;
                }
                LSlot::Deliver => delivers.push(i),
                LSlot::Basic => {}
            }
        }
    }
    // Cheap feasibility cut: a process cannot deliver more messages than
    // are addressed to it.
    for j in 0..layout.n {
        let incoming = sends.iter().filter(|s| s.dest == j).count();
        let wanted = delivers.iter().filter(|&&d| d == j).count();
        if wanted > incoming {
            return counts;
        }
    }
    used.clear();
    used.resize(sends.len(), false);
    chosen.clear();
    chosen.resize(delivers.len(), usize::MAX);
    match_delivers(
        layout,
        sends,
        delivers,
        0,
        used,
        chosen,
        perms,
        matching,
        &mut counts,
        visit,
    );
    counts
}

#[allow(clippy::too_many_arguments)] // recursive worker, all state is hot
fn match_delivers(
    layout: &Layout,
    sends: &[SendSlot],
    delivers: &[usize],
    k: usize,
    used: &mut Vec<bool>,
    chosen: &mut Vec<usize>,
    perms: &[Vec<usize>],
    scratch: &mut MatchScratch,
    counts: &mut EnumerationCounts,
    visit: &mut dyn FnMut(&Schedule),
) {
    if k == delivers.len() {
        counts.structures += 1;
        build_skeleton(layout, sends, chosen, &mut scratch.skeleton);
        if !is_canonical(scratch, perms) {
            counts.pruned_symmetry += 1;
            return;
        }
        counts.canonical += 1;
        if linearize(scratch) {
            counts.replayable += 1;
            visit(&scratch.schedule);
        } else {
            counts.unrealizable += 1;
        }
        return;
    }
    for (si, send) in sends.iter().enumerate() {
        if used[si] || send.dest != delivers[k] {
            continue;
        }
        used[si] = true;
        chosen[k] = si;
        match_delivers(
            layout,
            sends,
            delivers,
            k + 1,
            used,
            chosen,
            perms,
            scratch,
            counts,
            visit,
        );
        used[si] = false;
    }
}

pub(crate) fn build_skeleton(
    layout: &Layout,
    sends: &[SendSlot],
    chosen: &[usize],
    out: &mut Skeleton,
) {
    let mut deliver_index = 0;
    out.n = layout.n;
    for (line, out_line) in layout.lines.iter().zip(out.lines.iter_mut()) {
        out_line.clear();
        out_line.extend(line.iter().map(|slot| match *slot {
            LSlot::Basic => Slot::Basic,
            LSlot::Send { dest } => Slot::Send { dest },
            LSlot::Deliver => {
                let send = sends[chosen[deliver_index]];
                deliver_index += 1;
                Slot::Deliver {
                    src: send.process,
                    ord: send.ord,
                }
            }
        }));
    }
}

/// Packs one slot, relabeled by `perm`, into a single word whose
/// natural order equals the lexicographic order of the
/// `(kind, process-payload, ordinal)` triple. Slot counts stay far
/// below `1 << 8` at certifiable scopes, so the fields never collide,
/// and the `u32::MAX` line separator stays strictly above every slot.
#[inline]
pub(crate) fn encode_slot(slot: Slot, perm: &[usize]) -> u32 {
    match slot {
        Slot::Basic => 0,
        Slot::Send { dest } => (1 << 16) | ((perm[dest] as u32) << 8),
        Slot::Deliver { src, ord } => (2 << 16) | ((perm[src] as u32) << 8) | ord as u32,
    }
}

/// Serializes the skeleton as relabeled by `perm` (`perm[old] = new`).
/// Lines are emitted in new-process order; slot payloads are relabeled.
fn encode_relabeled(
    skeleton: &Skeleton,
    perm: &[usize],
    inverse: &mut [usize],
    buf: &mut Vec<u32>,
) {
    buf.clear();
    // inverse[j] = the old process that becomes new process j.
    for (old, &new) in perm.iter().enumerate() {
        inverse[new] = old;
    }
    for &old in inverse.iter() {
        for &slot in &skeleton.lines[old] {
            buf.push(encode_slot(slot, perm));
        }
        buf.push(u32::MAX); // line separator
    }
}

/// A skeleton is canonical iff no relabeling encodes strictly smaller
/// than the identity. Exactly one member of each isomorphism orbit is
/// canonical, so replaying canonical skeletons covers the orbit.
///
/// Non-identity relabelings are compared against the identity encoding
/// as they stream, bailing out at the first differing word — the full
/// relabeled encoding is never materialized.
fn is_canonical(scratch: &mut MatchScratch, perms: &[Vec<usize>]) -> bool {
    let MatchScratch {
        skeleton,
        identity_perm,
        identity,
        inverse,
        ..
    } = scratch;
    encode_relabeled(skeleton, identity_perm, inverse, identity);
    'perm: for perm in perms {
        if perm[..] == identity_perm[..] {
            continue;
        }
        for (old, &new) in perm.iter().enumerate() {
            inverse[new] = old;
        }
        let mut pos = 0;
        for &old in inverse.iter() {
            for &slot in &skeleton.lines[old] {
                let word = encode_slot(slot, perm);
                match word.cmp(&identity[pos]) {
                    std::cmp::Ordering::Less => return false,
                    std::cmp::Ordering::Greater => continue 'perm,
                    std::cmp::Ordering::Equal => pos += 1,
                }
            }
            match u32::MAX.cmp(&identity[pos]) {
                std::cmp::Ordering::Less => return false,
                std::cmp::Ordering::Greater => continue 'perm,
                std::cmp::Ordering::Equal => pos += 1,
            }
        }
        // Equal length and all words equal: the relabeling is not
        // strictly smaller, so it cannot disqualify the skeleton.
    }
    true
}

/// Like [`is_canonical`], but restricted to the `undecided` subset of
/// `perms` (indices into it) and counting the skeleton's stabilizer on
/// the way: returns `None` when some undecided relabeling encodes
/// strictly smaller (non-canonical), otherwise `Some(|Stab|)` — the
/// number of relabelings (identity included) that reproduce the skeleton
/// exactly. The orbit-pruned enumerator divides `n!` by the stabilizer to
/// recover full-space structure counts without generating the orbit.
///
/// Relabelings already classified strictly-greater at the layout level
/// are sound to omit: a strictly greater encoding can neither disqualify
/// the skeleton nor equal its identity encoding.
pub(crate) fn canonical_stab(
    scratch: &mut MatchScratch,
    perms: &[Vec<usize>],
    undecided: &[usize],
) -> Option<u64> {
    let mut stab = 1u64;
    if undecided.is_empty() {
        return Some(stab);
    }
    let MatchScratch {
        skeleton,
        identity_perm,
        identity,
        inverse,
        ..
    } = scratch;
    encode_relabeled(skeleton, identity_perm, inverse, identity);
    'perm: for &pi in undecided {
        let perm = &perms[pi];
        for (old, &new) in perm.iter().enumerate() {
            inverse[new] = old;
        }
        let mut pos = 0;
        for &old in inverse.iter() {
            for &slot in &skeleton.lines[old] {
                let word = encode_slot(slot, perm);
                match word.cmp(&identity[pos]) {
                    std::cmp::Ordering::Less => return None,
                    std::cmp::Ordering::Greater => continue 'perm,
                    std::cmp::Ordering::Equal => pos += 1,
                }
            }
            match u32::MAX.cmp(&identity[pos]) {
                std::cmp::Ordering::Less => return None,
                std::cmp::Ordering::Greater => continue 'perm,
                std::cmp::Ordering::Equal => pos += 1,
            }
        }
        // Equal end to end: `perm` maps the skeleton onto itself.
        stab += 1;
    }
    Some(stab)
}

/// Streams the identity encoding of `scratch`'s skeleton word by word
/// into an FNV-1a hash — the deterministic per-orbit key behind
/// stratified sampling. The key is a pure function of the canonical
/// representative, so it is identical for every thread count and
/// work-unit split.
pub(crate) fn skeleton_key(scratch: &MatchScratch) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    let mut absorb = |word: u32| {
        for byte in word.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for line in &scratch.skeleton.lines {
        for &slot in line {
            absorb(encode_slot(slot, &scratch.identity_perm));
        }
        absorb(u32::MAX);
    }
    hash
}

/// Produces the canonical linearization (greedy lowest-index-runnable
/// process first) into `scratch.schedule`, or `false` if the matching
/// admits no execution order (some delivery transitively awaits a send
/// that never becomes ready).
pub(crate) fn linearize(scratch: &mut MatchScratch) -> bool {
    let MatchScratch {
        skeleton,
        cursor,
        msg_of,
        next_ord,
        schedule,
        ..
    } = scratch;
    let n = skeleton.n;
    cursor.iter_mut().for_each(|c| *c = 0);
    next_ord.iter_mut().for_each(|o| *o = 0);
    for (line, of) in skeleton.lines.iter().zip(msg_of.iter_mut()) {
        let sends = line
            .iter()
            .filter(|s| matches!(s, Slot::Send { .. }))
            .count();
        of.clear();
        of.resize(sends, None);
    }
    let total: usize = skeleton.lines.iter().map(Vec::len).sum();
    let events = &mut schedule.events;
    let messages = &mut schedule.messages;
    events.clear();
    messages.clear();

    loop {
        let mut progressed = false;
        for i in 0..n {
            let line = &skeleton.lines[i];
            let Some(&slot) = line.get(cursor[i]) else {
                continue;
            };
            match slot {
                Slot::Basic => events.push(DriverEvent::Basic { process: i }),
                Slot::Send { dest } => {
                    let message = messages.len();
                    messages.push((i, dest));
                    msg_of[i][next_ord[i]] = Some(message);
                    next_ord[i] += 1;
                    events.push(DriverEvent::Send {
                        from: i,
                        to: dest,
                        message,
                    });
                }
                Slot::Deliver { src, ord } => {
                    let Some(message) = msg_of[src][ord] else {
                        continue; // source send not executed yet
                    };
                    events.push(DriverEvent::Deliver { to: i, message });
                }
            }
            cursor[i] += 1;
            progressed = true;
            break; // restart the scan from process 0
        }
        if !progressed {
            break;
        }
    }
    events.len() == total
}

/// Runs the full enumeration of `scope` serially, handing every canonical
/// realizable schedule to `visit`, and returns the tallies.
pub fn enumerate_schedules(scope: &Scope, mut visit: impl FnMut(&Schedule)) -> EnumerationCounts {
    let perms = permutations(scope.processes);
    let mut counts = EnumerationCounts::default();
    let mut scratch = LayoutScratch::new(scope.processes);
    for layout in enumerate_layouts(scope) {
        counts.absorb(&visit_layout(&layout, &perms, &mut scratch, &mut visit));
    }
    counts
}

/// Materializes the protocol-free pattern of every canonical realizable
/// skeleton in the scope, with the enumeration tallies. Mainly for tests:
/// the certifier streams schedules instead.
pub fn enumerate_patterns(scope: &Scope) -> (Vec<Pattern>, EnumerationCounts) {
    let mut patterns = Vec::new();
    let counts = enumerate_schedules(scope, |schedule| {
        if let Ok(pattern) = schedule.to_pattern() {
            patterns.push(pattern);
        }
    });
    (patterns, counts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(n: usize, m: usize, b: usize) -> EnumerationCounts {
        let scope = Scope::with_basics(n, m, b).unwrap();
        enumerate_schedules(&scope, |_| {})
    }

    #[test]
    fn permutations_are_complete_and_sorted() {
        assert_eq!(permutations(1), vec![vec![0]]);
        assert_eq!(permutations(3).len(), 6);
        assert_eq!(permutations(4).len(), 24);
        assert_eq!(permutations(2), vec![vec![0, 1], vec![1, 0]]);
    }

    /// n=1: no sends are possible (no self-channels); the space is just
    /// the chains of 0..=b basic checkpoints.
    #[test]
    fn single_process_counts_are_checkpoint_chains() {
        let c = counts(1, 2, 2);
        assert_eq!(c.structures, 3); // [], [c], [c,c]
        assert_eq!(c.canonical, 3);
        assert_eq!(c.pruned_symmetry, 0);
        assert_eq!(c.unrealizable, 0);
        assert_eq!(c.replayable, 3);
    }

    /// Hand count for n=2, m=1, b=0 (see doc table in VERIFICATION.md):
    /// k=0: the empty pattern. k=1: sender P0 or P1, message delivered or
    /// in transit → 4 skeletons, 5 total; orbits: {empty},
    /// {P0 sends ↔ P1 sends} undelivered, {..} delivered → 3 canonical.
    #[test]
    fn two_process_one_message_counts() {
        let c = counts(2, 1, 0);
        assert_eq!(c.structures, 5);
        assert_eq!(c.canonical, 3);
        assert_eq!(c.pruned_symmetry, 2);
        assert_eq!(c.unrealizable, 0);
        assert_eq!(c.replayable, 3);
    }

    /// Hand count for n=2, m=2, b=0.
    ///
    /// k≤1 contributes 5 structures (previous test). k=2 splits by send
    /// distribution:
    /// * (2,0) — P0 sends both: P1 delivers 0, 1 (×2 choices) or 2 (×2
    ///   orders) of them → 5; (0,2) mirrors → 5.
    /// * (1,1) — one send each: each process optionally delivers the
    ///   other's message, before or after its own send → 1 (neither
    ///   delivers) + 2 + 2 (one delivers) + 4 (both deliver) = 9,
    ///   including the deliver-before-send-on-both-sides cycle, which is
    ///   the scope's single unrealizable skeleton.
    ///
    /// Total 24 structures; orbits: 3 (k≤1) + 5 (the (2,0)/(0,2) mirror
    /// classes) + 6 ((1,1): 1 + 2 + 3) = 14 canonical, of which the cycle
    /// is unrealizable → 13 replayable.
    #[test]
    fn two_process_two_message_counts() {
        let c = counts(2, 2, 0);
        assert_eq!(c.structures, 24);
        assert_eq!(c.canonical, 14);
        assert_eq!(c.pruned_symmetry, 10);
        assert_eq!(c.unrealizable, 1);
        assert_eq!(c.replayable, 13);
    }

    /// Basic checkpoints only, n=2: ≤2 basics over two symmetric
    /// processes.
    #[test]
    fn two_process_basics_only_counts() {
        let c = counts(2, 0, 2);
        // {}, [c]/[], []/[c], [cc]/[], []/[cc], [c]/[c]
        assert_eq!(c.structures, 6);
        assert_eq!(c.canonical, 4);
        assert_eq!(c.pruned_symmetry, 2);
        assert_eq!(c.replayable, 4);
    }

    #[test]
    fn canonical_plus_pruned_covers_structures() {
        for (n, m, b) in [(2, 2, 1), (3, 2, 0), (3, 3, 1)] {
            let c = counts(n, m, b);
            assert_eq!(c.canonical + c.pruned_symmetry, c.structures, "{n},{m},{b}");
            assert_eq!(c.replayable + c.unrealizable, c.canonical, "{n},{m},{b}");
            assert!(c.replayable > 0);
        }
    }

    /// Every canonical realizable schedule builds a valid pattern, and
    /// the linearization is a real execution order (sends precede their
    /// deliveries).
    #[test]
    fn schedules_build_patterns() {
        let scope = Scope::with_basics(3, 2, 1).unwrap();
        let (patterns, c) = enumerate_patterns(&scope);
        assert_eq!(patterns.len() as u64, c.replayable);
        for pattern in &patterns {
            assert!(pattern.num_processes() == 3);
        }
    }

    /// The enumeration must contain the paper's Figure 2 skeleton shape
    /// (up to relabeling): some middle process delivers a message `a`
    /// *after* sending its own message `b` to a third process — the
    /// hidden-dependency chain `sender(a) → middle → dest(b)` that `C1`
    /// exists to break.
    #[test]
    fn figure_2_shape_is_enumerated() {
        let scope = Scope::with_basics(3, 2, 0).unwrap();
        let mut found = false;
        enumerate_schedules(&scope, |schedule| {
            if schedule.messages.len() != 2 {
                return;
            }
            let position = |wanted: &DriverEvent| schedule.events.iter().position(|e| e == wanted);
            for (a, b) in [(0, 1), (1, 0)] {
                let (a_from, a_to) = schedule.messages[a];
                let (b_from, b_to) = schedule.messages[b];
                let middle_relays = a_to == b_from && a_from != b_to && a_from != a_to;
                let deliver_a = position(&DriverEvent::Deliver {
                    to: a_to,
                    message: a,
                });
                let send_b = position(&DriverEvent::Send {
                    from: b_from,
                    to: b_to,
                    message: b,
                });
                let b_delivered = position(&DriverEvent::Deliver {
                    to: b_to,
                    message: b,
                })
                .is_some();
                if middle_relays && b_delivered && send_b < deliver_a && deliver_a.is_some() {
                    found = true;
                }
            }
        });
        assert!(found, "hidden-dependency skeleton missing from the scope");
    }

    #[test]
    fn render_is_compact_and_stable() {
        let scope = Scope::with_basics(2, 1, 0).unwrap();
        let mut renders = Vec::new();
        enumerate_schedules(&scope, |s| renders.push(s.render()));
        assert_eq!(renders, ["", "s0>1#0", "s0>1#0 d1#0"]);
    }

    #[test]
    fn relabeled_schedule_renders_with_new_process_ids() {
        let scope = Scope::with_basics(2, 1, 0).unwrap();
        let mut renders = Vec::new();
        enumerate_schedules(&scope, |s| renders.push(s.relabeled(&[1, 0]).render()));
        assert_eq!(renders, ["", "s1>0#0", "s1>0#0 d0#0"]);
    }
}
