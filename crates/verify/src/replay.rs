//! Replays online protocols over enumerated schedules.
//!
//! The driver walks a [`Schedule`] event by event, feeding one protocol
//! state machine per process, and records the *resulting* pattern —
//! enumerated basic checkpoints plus whatever checkpoints the protocol
//! forces. Alongside, every arrival is cross-checked against an
//! *independent predicate oracle*: a re-implementation of the protocol's
//! forcing predicate written against the protocol's public accessors
//! only, so a bug in the protocol's internal short-circuiting (or in the
//! oracle) surfaces as a [`PredicateMismatch`].

use rdt_causality::ProcessId;
use rdt_core::{
    spawner, Bcs, Bhmr, BhmrCausalOnly, BhmrNoSimple, BhmrPiggyback, Cas, CausalOnlyPiggyback, Cbr,
    CheckpointRecord, CicProtocol, ExecutorCell, ExecutorSpec, Fdas, Fdi, NoSimplePiggyback, Nras,
    PackedPiggyback, ProtocolKind, TdvPiggyback, Uncoordinated,
};
use rdt_rgraph::{Pattern, PatternBuilder, PatternError};

use crate::enumerate::{DriverEvent, Schedule};

/// One disagreement between a protocol's forcing decision and the
/// independent predicate oracle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PredicateMismatch {
    /// Index of the delivery event in the schedule.
    pub event_index: usize,
    /// The delivering process.
    pub process: usize,
    /// What the oracle says the predicate evaluates to.
    pub oracle_forces: bool,
    /// What the protocol actually did.
    pub protocol_forced: bool,
}

/// Outcome of replaying one protocol over one schedule.
#[derive(Debug)]
pub struct ReplayedRun {
    /// The checkpoint-and-communication pattern the protocol produced
    /// (not yet closed; analyses close it).
    pub pattern: Pattern,
    /// Every checkpoint the protocol reported, in event order.
    pub records: Vec<CheckpointRecord>,
    /// Forcing-predicate disagreements (empty unless a protocol or
    /// oracle is buggy).
    pub predicate_mismatches: Vec<PredicateMismatch>,
}

/// One pattern-building operation of a replayed run, in execution order.
///
/// This is the *op stream* form of a replay outcome: applying the ops in
/// order to a [`PatternBuilder`] — or to an incremental
/// [`rdt_rgraph::IncrementalAnalysis`] — reproduces the replayed pattern.
/// Two runs over schedules sharing an event prefix produce op streams
/// sharing a prefix, which is what makes prefix-sharing replay possible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PatternOp {
    /// A checkpoint on the process (basic or protocol-forced).
    Checkpoint(ProcessId),
    /// A send; sends are implicitly numbered in op order.
    Send {
        /// Sender.
        from: ProcessId,
        /// Receiver.
        to: ProcessId,
    },
    /// Delivery of the numbered send.
    Deliver(u32),
}

/// Outcome of replaying one protocol over one schedule, as an op stream
/// (no pattern materialized). Equality is whole-outcome equality — two
/// equal outcomes yield identical certifier verdicts, which is what the
/// certifier's cross-protocol verdict sharing keys on.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct ReplayedOps {
    /// The pattern operations, in execution order.
    pub ops: Vec<PatternOp>,
    /// Every checkpoint the protocol reported, in event order.
    pub records: Vec<CheckpointRecord>,
    /// Forcing-predicate disagreements (empty unless a protocol or
    /// oracle is buggy).
    pub predicate_mismatches: Vec<PredicateMismatch>,
}

impl ReplayedOps {
    fn clear(&mut self) {
        self.ops.clear();
        self.records.clear();
        self.predicate_mismatches.clear();
    }
}

/// Replays `schedule` over one protocol instance per process, appending
/// the outcome to `out` (cleared first; callers reuse the buffers).
///
/// `oracle` re-evaluates the forcing predicate from the receiver's public
/// state *before* the arrival mutates it; returning `None` skips the
/// conformance check (protocols whose predicate reads private-only state).
///
/// Schedule message numbers are send-order numbers, so they double as the
/// op stream's implicit send numbering — no translation needed.
pub fn replay_protocol_ops<P: CicProtocol>(
    schedule: &Schedule,
    make: impl Fn(usize, ProcessId) -> P,
    oracle: impl Fn(&P, ProcessId, &P::Piggyback) -> Option<bool>,
    out: &mut ReplayedOps,
) {
    out.clear();
    let n = schedule.n;
    let mut procs: Vec<P> = (0..n).map(|i| make(n, ProcessId::new(i))).collect();
    let mut piggybacks: Vec<P::Piggyback> = Vec::with_capacity(schedule.messages.len());

    for (event_index, event) in schedule.events.iter().enumerate() {
        match *event {
            DriverEvent::Basic { process } => {
                out.records.push(procs[process].take_basic_checkpoint());
                out.ops.push(PatternOp::Checkpoint(ProcessId::new(process)));
            }
            DriverEvent::Send { from, to, .. } => {
                let outcome = procs[from].before_send(ProcessId::new(to));
                piggybacks.push(outcome.piggyback);
                out.ops.push(PatternOp::Send {
                    from: ProcessId::new(from),
                    to: ProcessId::new(to),
                });
                // Checkpoint-after-send protocols checkpoint *after* the
                // send event.
                if let Some(record) = outcome.forced_after {
                    out.records.push(record);
                    out.ops.push(PatternOp::Checkpoint(ProcessId::new(from)));
                }
            }
            DriverEvent::Deliver { to, message } => {
                let (from, _) = schedule.messages[message];
                let sender = ProcessId::new(from);
                let expected = oracle(&procs[to], sender, &piggybacks[message]);
                let outcome = procs[to].on_message_arrival(sender, &piggybacks[message]);
                let forced = outcome.was_forced();
                // A forced checkpoint precedes the delivery event.
                if let Some(record) = outcome.forced {
                    out.records.push(record);
                    out.ops.push(PatternOp::Checkpoint(ProcessId::new(to)));
                }
                out.ops.push(PatternOp::Deliver(message as u32));
                if let Some(oracle_forces) = expected {
                    if oracle_forces != forced {
                        out.predicate_mismatches.push(PredicateMismatch {
                            event_index,
                            process: to,
                            oracle_forces,
                            protocol_forced: forced,
                        });
                    }
                }
            }
        }
    }
}

/// Replays `schedule` over one protocol instance per process and builds
/// the resulting [`Pattern`] (see [`replay_protocol_ops`] for the
/// allocation-free op-stream form the certifier uses).
///
/// # Errors
///
/// Returns an error if the produced pattern is invalid — impossible for
/// enumerator-produced schedules, but propagated rather than unwrapped.
pub fn replay_protocol<P: CicProtocol>(
    schedule: &Schedule,
    make: impl Fn(usize, ProcessId) -> P,
    oracle: impl Fn(&P, ProcessId, &P::Piggyback) -> Option<bool>,
) -> Result<ReplayedRun, PatternError> {
    let mut run = ReplayedOps::default();
    replay_protocol_ops(schedule, make, oracle, &mut run);
    Ok(ReplayedRun {
        pattern: build_pattern(schedule.n, &run.ops)?,
        records: run.records,
        predicate_mismatches: run.predicate_mismatches,
    })
}

/// Materializes the pattern of an op stream.
///
/// # Errors
///
/// Returns an error if the ops are not a valid execution order (never for
/// replay-produced streams).
pub fn build_pattern(n: usize, ops: &[PatternOp]) -> Result<Pattern, PatternError> {
    let mut builder = PatternBuilder::new(n);
    let mut mids = Vec::new();
    for op in ops {
        match *op {
            PatternOp::Checkpoint(process) => {
                builder.checkpoint(process);
            }
            PatternOp::Send { from, to } => mids.push(builder.send(from, to)),
            PatternOp::Deliver(message) => {
                builder.deliver(mids[message as usize])?;
            }
        }
    }
    builder.build()
}

/// The forcing predicate of full BHMR, recomputed from public accessors:
/// `C1 ∨ C2` (§4 of the paper), or `C2` alone for the deliberately
/// weakened variant ([`Bhmr::weakened_c2_only`]).
fn bhmr_oracle(p: &Bhmr, _sender: ProcessId, pb: &BhmrPiggyback) -> Option<bool> {
    let me = p.process();
    let procs = || (0..p.num_processes()).map(ProcessId::new);
    let c1 = procs().any(|j| {
        p.sent_to().get(j)
            && procs().any(|k| pb.tdv.get(k) > p.tdv().get(k) && !pb.causal.get(k, j))
    });
    let c2 = pb.tdv.get(me) == p.tdv().current_interval() && !pb.simple.get(me);
    Some(if p.uses_c1() { c1 || c2 } else { c2 })
}

/// BHMR-no-simple: `C1 ∨ C2'` with
/// `C2': m.TDV[i] = TDV[i] ∧ ∃k: m.TDV[k] > TDV[k]`.
fn no_simple_oracle(p: &BhmrNoSimple, _s: ProcessId, pb: &NoSimplePiggyback) -> Option<bool> {
    let me = p.process();
    let procs = || (0..p.num_processes()).map(ProcessId::new);
    let fresh = |k: ProcessId| pb.tdv.get(k) > p.tdv().get(k);
    let c1 =
        procs().any(|j| p.sent_to().get(j) && procs().any(|k| fresh(k) && !pb.causal.get(k, j)));
    let c2 = pb.tdv.get(me) == p.tdv().current_interval() && procs().any(fresh);
    Some(c1 || c2)
}

/// BHMR-causal-only: `C1` with a `false` diagonal in the causal matrix
/// (no `C2` at all — its RDT claim rests on the strengthened `C1`).
fn causal_only_oracle(p: &BhmrCausalOnly, _s: ProcessId, pb: &CausalOnlyPiggyback) -> Option<bool> {
    let procs = || (0..p.num_processes()).map(ProcessId::new);
    let c1 = procs().any(|j| {
        p.sent_to().get(j)
            && procs().any(|k| pb.tdv.get(k) > p.tdv().get(k) && !pb.causal.get(k, j))
    });
    Some(c1)
}

/// FDAS: force iff a send happened since the last checkpoint and the
/// piggyback carries a new dependency.
fn fdas_oracle(p: &Fdas, _s: ProcessId, pb: &TdvPiggyback) -> Option<bool> {
    let fresh = (0..p.num_processes())
        .map(ProcessId::new)
        .any(|k| pb.tdv.get(k) > p.tdv().get(k));
    Some(p.after_first_send() && fresh)
}

/// FDI: force iff the piggyback carries a new dependency.
fn fdi_oracle(p: &Fdi, _s: ProcessId, pb: &TdvPiggyback) -> Option<bool> {
    let fresh = (0..p.num_processes())
        .map(ProcessId::new)
        .any(|k| pb.tdv.get(k) > p.tdv().get(k));
    Some(fresh)
}

/// The legacy scalar predicates, recomputed over the *packed* executor's
/// public accessors. These are the cross-check for the executor's
/// word-parallel kernels: the executor evaluates `C1`/`C2` with masked
/// word operations, the oracle re-derives the same decision entry by
/// entry, and any disagreement on any enumerated structure surfaces as a
/// [`PredicateMismatch`] in the certifier report.
fn exec_bhmr_oracle(p: &ExecutorCell, _s: ProcessId, pb: &PackedPiggyback) -> Option<bool> {
    let me = p.process();
    let procs = || (0..p.num_processes()).map(ProcessId::new);
    let c1 = procs().any(|j| {
        p.sent_to(j) && procs().any(|k| pb.tdv_entry(k) > p.tdv_entry(k) && !pb.causal_entry(k, j))
    });
    let c2 = pb.tdv_entry(me) == p.current_interval() && !pb.simple_entry(me);
    Some(if p.uses_c1() { c1 || c2 } else { c2 })
}

/// Scalar `C1 ∨ C2'` over the packed executor's accessors.
fn exec_no_simple_oracle(p: &ExecutorCell, _s: ProcessId, pb: &PackedPiggyback) -> Option<bool> {
    let me = p.process();
    let procs = || (0..p.num_processes()).map(ProcessId::new);
    let fresh = |k: ProcessId| pb.tdv_entry(k) > p.tdv_entry(k);
    let c1 = procs().any(|j| p.sent_to(j) && procs().any(|k| fresh(k) && !pb.causal_entry(k, j)));
    let c2 = pb.tdv_entry(me) == p.current_interval() && procs().any(fresh);
    Some(c1 || c2)
}

/// Scalar `C1` (false-diagonal variant) over the packed executor's
/// accessors.
fn exec_causal_only_oracle(p: &ExecutorCell, _s: ProcessId, pb: &PackedPiggyback) -> Option<bool> {
    let procs = || (0..p.num_processes()).map(ProcessId::new);
    let c1 = procs().any(|j| {
        p.sent_to(j) && procs().any(|k| pb.tdv_entry(k) > p.tdv_entry(k) && !pb.causal_entry(k, j))
    });
    Some(c1)
}

/// Scalar `C_FDAS` over the packed executor's accessors.
fn exec_fdas_oracle(p: &ExecutorCell, _s: ProcessId, pb: &PackedPiggyback) -> Option<bool> {
    let fresh = (0..p.num_processes())
        .map(ProcessId::new)
        .any(|k| pb.tdv_entry(k) > p.tdv_entry(k));
    Some(p.after_first_send() && fresh)
}

/// Scalar `C_FDI` over the packed executor's accessors.
fn exec_fdi_oracle(p: &ExecutorCell, _s: ProcessId, pb: &PackedPiggyback) -> Option<bool> {
    let fresh = (0..p.num_processes())
        .map(ProcessId::new)
        .any(|k| pb.tdv_entry(k) > p.tdv_entry(k));
    Some(fresh)
}

/// The protocols the certifier knows how to instantiate: every shipped
/// [`ProtocolKind`] plus the deliberately weakened BHMR variant that the
/// regression suite uses to prove the certifier can catch a broken
/// forcing predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CertProtocol {
    /// A shipped protocol.
    Kind(ProtocolKind),
    /// BHMR with `C1` disabled: claims RDT, does not ensure it. The
    /// certifier must find counterexamples for this one — that it does is
    /// itself certified (a meta-check on the checker).
    WeakenedBhmrC2Only,
}

impl CertProtocol {
    /// Every shipped protocol plus the weakened control, in report order.
    pub fn default_set() -> Vec<CertProtocol> {
        let mut set: Vec<CertProtocol> = ProtocolKind::all()
            .iter()
            .copied()
            .map(CertProtocol::Kind)
            .collect();
        set.push(CertProtocol::WeakenedBhmrC2Only);
        set
    }

    /// Stable report name.
    pub fn name(&self) -> &'static str {
        match self {
            CertProtocol::Kind(kind) => kind.name(),
            CertProtocol::WeakenedBhmrC2Only => "bhmr-c2only",
        }
    }

    /// Whether the protocol claims to ensure RDT. RDT violations are
    /// counterexamples exactly for claiming protocols. The weakened
    /// variant *claims* (falsely) — that is the point of shipping it.
    pub fn claims_rdt(&self) -> bool {
        match self {
            CertProtocol::Kind(kind) => kind.ensures_rdt(),
            CertProtocol::WeakenedBhmrC2Only => true,
        }
    }

    /// Whether the certifier expects a clean report: true for every
    /// shipped protocol, false only for the weakened control (whose
    /// counterexamples are expected and demanded).
    pub fn expected_clean(&self) -> bool {
        !matches!(self, CertProtocol::WeakenedBhmrC2Only)
    }

    /// Whether replayed checkpoints must carry
    /// `min_consistent_gc = TDV` equal to the oracle-computed minimum
    /// (Corollary 4.5 — sound only under an honest RDT claim).
    pub fn check_reported_min_gc(&self) -> bool {
        match self {
            CertProtocol::Kind(kind) => kind.ensures_rdt() && kind.tracks_dependencies(),
            CertProtocol::WeakenedBhmrC2Only => false,
        }
    }

    /// Replays this protocol over `schedule` as an op stream, into `out`
    /// (cleared first; callers reuse the buffers across schedules).
    ///
    /// Dependency-tracking protocols replay on the packed round-executor
    /// with the legacy scalar predicates as conformance oracles; see
    /// [`CertProtocol::replay_ops_legacy`] for the legacy state machines.
    pub fn replay_ops(&self, schedule: &Schedule, out: &mut ReplayedOps) {
        // A fresh closure per call site: one binding would pin the
        // protocol type at its first use.
        macro_rules! no_oracle {
            () => {
                |_: &_, _: ProcessId, _: &_| None
            };
        }
        match self {
            CertProtocol::Kind(ProtocolKind::Bhmr) => {
                replay_protocol_ops(schedule, spawner(ExecutorSpec::Bhmr), exec_bhmr_oracle, out)
            }
            CertProtocol::WeakenedBhmrC2Only => replay_protocol_ops(
                schedule,
                spawner(ExecutorSpec::BhmrC2Only),
                exec_bhmr_oracle,
                out,
            ),
            CertProtocol::Kind(ProtocolKind::BhmrNoSimple) => replay_protocol_ops(
                schedule,
                spawner(ExecutorSpec::BhmrNoSimple),
                exec_no_simple_oracle,
                out,
            ),
            CertProtocol::Kind(ProtocolKind::BhmrCausalOnly) => replay_protocol_ops(
                schedule,
                spawner(ExecutorSpec::BhmrCausalOnly),
                exec_causal_only_oracle,
                out,
            ),
            CertProtocol::Kind(ProtocolKind::Fdas) => {
                replay_protocol_ops(schedule, spawner(ExecutorSpec::Fdas), exec_fdas_oracle, out)
            }
            CertProtocol::Kind(ProtocolKind::Fdi) => {
                replay_protocol_ops(schedule, spawner(ExecutorSpec::Fdi), exec_fdi_oracle, out)
            }
            CertProtocol::Kind(ProtocolKind::Bcs) => {
                replay_protocol_ops(schedule, Bcs::new, no_oracle!(), out)
            }
            CertProtocol::Kind(ProtocolKind::Cbr) => {
                replay_protocol_ops(schedule, Cbr::new, no_oracle!(), out)
            }
            CertProtocol::Kind(ProtocolKind::Cas) => {
                replay_protocol_ops(schedule, Cas::new, no_oracle!(), out)
            }
            CertProtocol::Kind(ProtocolKind::Nras) => {
                replay_protocol_ops(schedule, Nras::new, no_oracle!(), out)
            }
            CertProtocol::Kind(ProtocolKind::Uncoordinated) => {
                replay_protocol_ops(schedule, Uncoordinated::new, no_oracle!(), out)
            }
        }
    }

    /// Replays this protocol over `schedule` on the *legacy* state
    /// machines with their original predicate oracles.
    ///
    /// Kept as the differential baseline: the regression suite asserts
    /// [`CertProtocol::replay_ops`] (executor path) produces identical op
    /// streams, checkpoint records and mismatch lists on every enumerated
    /// structure, so the certifier report is independent of which engine
    /// replays.
    pub fn replay_ops_legacy(&self, schedule: &Schedule, out: &mut ReplayedOps) {
        match self {
            CertProtocol::Kind(ProtocolKind::Bhmr) => {
                replay_protocol_ops(schedule, Bhmr::new, bhmr_oracle, out)
            }
            CertProtocol::WeakenedBhmrC2Only => {
                replay_protocol_ops(schedule, Bhmr::weakened_c2_only, bhmr_oracle, out)
            }
            CertProtocol::Kind(ProtocolKind::BhmrNoSimple) => {
                replay_protocol_ops(schedule, BhmrNoSimple::new, no_simple_oracle, out)
            }
            CertProtocol::Kind(ProtocolKind::BhmrCausalOnly) => {
                replay_protocol_ops(schedule, BhmrCausalOnly::new, causal_only_oracle, out)
            }
            CertProtocol::Kind(ProtocolKind::Fdas) => {
                replay_protocol_ops(schedule, Fdas::new, fdas_oracle, out)
            }
            CertProtocol::Kind(ProtocolKind::Fdi) => {
                replay_protocol_ops(schedule, Fdi::new, fdi_oracle, out)
            }
            _ => self.replay_ops(schedule, out),
        }
    }

    /// Replays this protocol over `schedule` and materializes the
    /// pattern.
    ///
    /// # Errors
    ///
    /// Propagates pattern-construction failures (never for
    /// enumerator-produced schedules).
    pub fn replay(&self, schedule: &Schedule) -> Result<ReplayedRun, PatternError> {
        let mut run = ReplayedOps::default();
        self.replay_ops(schedule, &mut run);
        Ok(ReplayedRun {
            pattern: build_pattern(schedule.n, &run.ops)?,
            records: run.records,
            predicate_mismatches: run.predicate_mismatches,
        })
    }
}

impl std::fmt::Display for CertProtocol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::enumerate_schedules;
    use crate::Scope;
    use rdt_rgraph::PatternAnalysis;

    fn schedules(n: usize, m: usize, b: usize) -> Vec<Schedule> {
        let scope = Scope::with_basics(n, m, b).unwrap();
        let mut out = Vec::new();
        enumerate_schedules(&scope, |s| out.push(s.clone()));
        out
    }

    #[test]
    fn replayed_patterns_are_realizable_and_extend_the_skeleton() {
        for schedule in schedules(3, 2, 1) {
            let run = CertProtocol::Kind(ProtocolKind::Bhmr)
                .replay(&schedule)
                .unwrap();
            let analysis = PatternAnalysis::new(&run.pattern);
            assert!(analysis.try_rdt_report().is_ok(), "{}", schedule.render());
            // The protocol pattern has at least the skeleton's messages.
            assert_eq!(run.pattern.num_messages(), schedule.messages.len());
        }
    }

    #[test]
    fn oracles_agree_with_protocols_across_the_scope() {
        for schedule in schedules(3, 2, 1) {
            for protocol in CertProtocol::default_set() {
                let run = protocol.replay(&schedule).unwrap();
                assert!(
                    run.predicate_mismatches.is_empty(),
                    "{protocol}: {} on {}",
                    run.predicate_mismatches.len(),
                    schedule.render()
                );
            }
        }
    }

    #[test]
    fn checkpoint_after_send_inserts_post_send_checkpoints() {
        let scope = Scope::with_basics(2, 1, 0).unwrap();
        let mut max_checkpoints = 0;
        enumerate_schedules(&scope, |schedule| {
            let run = CertProtocol::Kind(ProtocolKind::Cas)
                .replay(schedule)
                .unwrap();
            max_checkpoints = max_checkpoints.max(run.records.len());
        });
        // The s0>1 schedule must have produced a forced checkpoint after
        // the send.
        assert_eq!(max_checkpoints, 1);
    }

    #[test]
    fn executor_replay_matches_legacy_on_every_enumerated_structure() {
        // The certifier replays through the packed executor; the legacy
        // state machines must produce identical op streams, records and
        // (empty) mismatch lists on every structure in the scope — this
        // is what keeps the certify report byte-identical across engines.
        let mut exec = ReplayedOps::default();
        let mut legacy = ReplayedOps::default();
        for schedule in schedules(3, 2, 1) {
            for protocol in CertProtocol::default_set() {
                protocol.replay_ops(&schedule, &mut exec);
                protocol.replay_ops_legacy(&schedule, &mut legacy);
                assert_eq!(exec.ops, legacy.ops, "{protocol} on {}", schedule.render());
                assert_eq!(
                    exec.records,
                    legacy.records,
                    "{protocol} on {}",
                    schedule.render()
                );
                assert!(exec.predicate_mismatches.is_empty(), "{protocol}");
                assert!(legacy.predicate_mismatches.is_empty(), "{protocol}");
            }
        }
    }

    #[test]
    fn weakened_bhmr_diverges_from_full_bhmr_somewhere() {
        // At n=3, m=2 the hidden-dependency skeleton exists; the weakened
        // variant must force strictly fewer checkpoints than full BHMR on
        // at least one schedule.
        let mut diverged = false;
        for schedule in schedules(3, 2, 0) {
            let full = CertProtocol::Kind(ProtocolKind::Bhmr)
                .replay(&schedule)
                .unwrap();
            let weak = CertProtocol::WeakenedBhmrC2Only.replay(&schedule).unwrap();
            assert!(weak.records.len() <= full.records.len());
            diverged |= weak.records.len() < full.records.len();
        }
        assert!(diverged, "C1 never fired at n=3, m=2 — scope too small?");
    }
}
