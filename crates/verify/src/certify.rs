//! The certifier: replays every protocol over every enumerated pattern
//! and checks the outcomes against the offline theory.
//!
//! Per (canonical realizable schedule × protocol) the certifier checks:
//!
//! 1. **RDT conformance** — the three offline characterizations (R-path
//!    trackability, doubled message chains, doubled causal-message
//!    paths) are evaluated on the replayed pattern; they must agree with
//!    each other on *every* pattern, and must all hold for protocols
//!    that claim RDT.
//! 2. **Predicate conformance** — the protocol's forcing decisions match
//!    an independent re-evaluation of its predicate
//!    (see [`crate::replay`]).
//! 3. **Global-checkpoint oracles** — for every checkpoint the protocol
//!    took, the orphan-fixpoint minimum consistent global checkpoint
//!    equals the R-graph-reachability one; minimum and maximum agree on
//!    existence and are ordered; and for RDT dependency-tracking
//!    protocols the `TDV` saved with the checkpoint *is* that minimum
//!    (Corollary 4.5).
//!
//! Any failed check is a [`Counterexample`] carrying the schedule that
//! reproduces it. The deliberately weakened BHMR variant must produce
//! counterexamples — the report records that expectation separately so a
//! certifier that has gone blind fails loudly.
//!
//! Two pipelines produce the (byte-identical) report. The default
//! [`CertifyEngine::OrbitPruned`] streams self-describing work units
//! through the orbit-pruned enumerator (see [`crate::orbit`]), shares
//! engine verdicts between protocols whose replay produced the identical
//! op stream, and supports deterministic orbit sampling and progress
//! reporting. [`CertifyEngine::PrefixBaseline`] is the previous
//! layout-fan-out pipeline, kept as the differential and benchmark
//! baseline.

use rdt_json::{Json, ToJson};
use rdt_rgraph::{GlobalCheckpoint, IncrementalAnalysis, Mark};
use rdt_sim::{parallel_map_indexed, parallel_map_indexed_observed, Stopwatch};

use crate::enumerate::{
    enumerate_layouts, permutations, visit_layout, EnumerationCounts, LayoutScratch, Schedule,
};
use crate::orbit::{enumerate_units, OrbitContext, OrbitScratch, OrbitStats};
use crate::replay::{CertProtocol, PatternOp, ReplayedOps};
use crate::Scope;

/// One failed check, with everything needed to reproduce it by hand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counterexample {
    /// Protocol the check failed for.
    pub protocol: &'static str,
    /// Failed check, as a stable slug (e.g. `"rdt-violation"`).
    pub kind: &'static str,
    /// The schedule, rendered (see [`Schedule::render`]).
    pub schedule: String,
    /// Human-readable specifics.
    pub detail: String,
}

impl ToJson for Counterexample {
    fn to_json(&self) -> Json {
        Json::obj([
            ("protocol", Json::Str(self.protocol.to_string())),
            ("kind", Json::Str(self.kind.to_string())),
            ("schedule", Json::Str(self.schedule.clone())),
            ("detail", Json::Str(self.detail.clone())),
        ])
    }
}

/// Per-protocol tallies, merged across workers in deterministic order.
#[derive(Debug, Default, Clone)]
struct ProtocolTally {
    patterns: u64,
    rdt_violations: u64,
    predicate_mismatches: u64,
    gc_checks: u64,
    counterexample_total: u64,
    counterexamples: Vec<Counterexample>,
}

impl ProtocolTally {
    fn note(
        &mut self,
        max_kept: usize,
        protocol: &CertProtocol,
        kind: &'static str,
        schedule: &Schedule,
        detail: String,
    ) {
        self.counterexample_total += 1;
        if self.counterexamples.len() < max_kept {
            self.counterexamples.push(Counterexample {
                protocol: protocol.name(),
                kind,
                schedule: schedule.render(),
                detail,
            });
        }
    }

    fn absorb(&mut self, other: ProtocolTally, max_kept: usize) {
        self.patterns += other.patterns;
        self.rdt_violations += other.rdt_violations;
        self.predicate_mismatches += other.predicate_mismatches;
        self.gc_checks += other.gc_checks;
        self.counterexample_total += other.counterexample_total;
        for cex in other.counterexamples {
            if self.counterexamples.len() < max_kept {
                self.counterexamples.push(cex);
            }
        }
    }
}

/// Which enumeration/replay pipeline drives the certifier. Both produce
/// byte-identical reports for the same scope and options — pinned by the
/// engine-differential test and the bench gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CertifyEngine {
    /// Orbit-pruned, work-unit-streamed pipeline (the default):
    /// symmetry-reduced enumeration with subtree pruning, cross-protocol
    /// verdict sharing, deterministic orbit sampling, progress reporting.
    OrbitPruned,
    /// The layout-fan-out prefix-sharing pipeline, kept as the
    /// differential baseline the orbit engine is benchmarked against.
    PrefixBaseline,
}

/// Certification options.
#[derive(Debug, Clone)]
pub struct CertifyOptions {
    /// Worker threads; `0` resolves to the machine's available
    /// parallelism. The report is byte-identical for every thread count.
    pub threads: usize,
    /// Protocols to certify (default: every shipped protocol plus the
    /// weakened BHMR control).
    pub protocols: Vec<CertProtocol>,
    /// Counterexamples *kept* per protocol (all are counted).
    pub max_counterexamples: usize,
    /// Compact each replay session's engine to its recovery line every
    /// this many schedules (`0` disables). Bounds the engine's resident
    /// closure at large scopes; the next schedule rebuilds from the empty
    /// pattern instead of sharing a prefix across the compaction point,
    /// so the report stays byte-identical for every interval.
    pub compact_interval: u64,
    /// Enumeration/replay pipeline (see [`CertifyEngine`]).
    pub engine: CertifyEngine,
    /// Deterministic stratified sampling over canonical orbits
    /// (orbit engine only): replay only orbits whose sampling key falls
    /// below this fraction of the key space; `None` (or any fraction
    /// `>= 1`) replays exhaustively. Enumeration counts always cover the
    /// full space; per-protocol tallies cover the sample. The sampled
    /// set is a pure function of (scope, fraction) — independent of
    /// thread count, stable across runs.
    pub sample: Option<f64>,
    /// Emit periodic progress/ETA lines on stderr (orbit engine only):
    /// structures/sec, orbits pruned, schedules replayed.
    pub progress: bool,
}

impl Default for CertifyOptions {
    fn default() -> Self {
        CertifyOptions {
            threads: 0,
            protocols: CertProtocol::default_set(),
            max_counterexamples: 8,
            compact_interval: 0,
            engine: CertifyEngine::OrbitPruned,
            sample: None,
            progress: false,
        }
    }
}

/// Per-protocol section of a [`CertifyReport`].
#[derive(Debug, Clone)]
pub struct ProtocolReport {
    /// Protocol name.
    pub name: &'static str,
    /// Whether the protocol claims RDT.
    pub claims_rdt: bool,
    /// Whether a clean report is expected (false only for the weakened
    /// control).
    pub expected_clean: bool,
    /// Patterns replayed.
    pub patterns: u64,
    /// Replayed patterns violating RDT (counterexamples iff claiming).
    pub rdt_violations: u64,
    /// Forcing-predicate disagreements with the independent oracle.
    pub predicate_mismatches: u64,
    /// Checkpoints put through the min/max consistent-GC oracles.
    pub gc_checks: u64,
    /// Total failed checks (also counts dropped counterexamples).
    pub counterexample_total: u64,
    /// Kept counterexamples, at most `max_counterexamples`.
    pub counterexamples: Vec<Counterexample>,
}

impl ToJson for ProtocolReport {
    fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::Str(self.name.to_string())),
            ("claims_rdt", Json::Bool(self.claims_rdt)),
            ("expected_clean", Json::Bool(self.expected_clean)),
            ("patterns", Json::U64(self.patterns)),
            ("rdt_violations", Json::U64(self.rdt_violations)),
            ("predicate_mismatches", Json::U64(self.predicate_mismatches)),
            ("gc_checks", Json::U64(self.gc_checks)),
            ("counterexample_total", Json::U64(self.counterexample_total)),
            ("counterexamples", self.counterexamples.to_json()),
        ])
    }
}

/// The certification verdict over one scope.
#[derive(Debug, Clone)]
pub struct CertifyReport {
    /// The exhaustively covered scope.
    pub scope: Scope,
    /// Enumeration tallies (shared by all protocols); always full-space,
    /// even under sampling.
    pub counts: EnumerationCounts,
    /// The sampling fraction, when this run replayed a deterministic
    /// sample of the canonical orbits instead of all of them.
    pub sample: Option<f64>,
    /// Schedules actually replayed (equals `counts.replayable` unless
    /// sampled).
    pub sampled: u64,
    /// Per-protocol results, in [`CertifyOptions::protocols`] order.
    pub protocols: Vec<ProtocolReport>,
}

impl CertifyReport {
    /// `true` iff every protocol expected to be clean has zero failed
    /// checks **and** every protocol expected to be caught (the weakened
    /// control) produced at least one counterexample. Note the second
    /// half only binds at scopes large enough for `C1` to matter
    /// (`n >= 3`, `m >= 2`); below that the control is vacuously
    /// indistinguishable and exempt.
    pub fn certified_ok(&self) -> bool {
        let control_binds = self.scope.processes >= 3 && self.scope.messages >= 2;
        self.protocols.iter().all(|p| {
            if p.expected_clean {
                p.counterexample_total == 0
            } else {
                !control_binds || p.counterexample_total > 0
            }
        })
    }

    /// The per-protocol section for `name`, if certified.
    pub fn protocol(&self, name: &str) -> Option<&ProtocolReport> {
        self.protocols.iter().find(|p| p.name == name)
    }

    /// Multi-line human-readable rendering.
    pub fn render(&self) -> String {
        let c = &self.counts;
        let mut out = format!(
            "scope {}: {} structures, {} canonical ({} pruned by symmetry), \
             {} unrealizable, {} patterns replayed\n",
            self.scope, c.structures, c.canonical, c.pruned_symmetry, c.unrealizable, c.replayable,
        );
        if let Some(frac) = self.sample {
            out.push_str(&format!(
                "  sampled: {} of {} replayable patterns (fraction {frac})\n",
                self.sampled, c.replayable,
            ));
        }
        let control_binds = self.scope.processes >= 3 && self.scope.messages >= 2;
        for p in &self.protocols {
            let verdict = if p.counterexample_total == 0 {
                if p.expected_clean {
                    "ok".to_string()
                } else if control_binds {
                    "MISSED (control produced no counterexample)".to_string()
                } else {
                    "control not binding at this scope (needs n>=3, m>=2)".to_string()
                }
            } else if p.expected_clean {
                format!("FAILED ({} counterexamples)", p.counterexample_total)
            } else {
                format!(
                    "caught as expected ({} counterexamples)",
                    p.counterexample_total
                )
            };
            out.push_str(&format!(
                "  {:14} claims_rdt={:5} rdt_violations={:6} predicate_mismatches={} gc_checks={:6}  {}\n",
                p.name, p.claims_rdt, p.rdt_violations, p.predicate_mismatches, p.gc_checks, verdict,
            ));
            for cex in &p.counterexamples {
                out.push_str(&format!(
                    "    [{}] {}: {}\n",
                    cex.kind, cex.schedule, cex.detail
                ));
            }
        }
        out.push_str(&format!(
            "verdict: {}\n",
            if self.certified_ok() {
                "CERTIFIED"
            } else {
                "NOT CERTIFIED"
            }
        ));
        out
    }
}

impl ToJson for CertifyReport {
    fn to_json(&self) -> Json {
        let c = &self.counts;
        let mut pairs = vec![
            ("scope", Json::Str(self.scope.to_string())),
            ("processes", Json::U64(self.scope.processes as u64)),
            ("messages", Json::U64(self.scope.messages as u64)),
            ("basics", Json::U64(self.scope.basics as u64)),
            ("enumerated", Json::U64(c.structures)),
            ("canonical", Json::U64(c.canonical)),
            ("pruned_symmetry", Json::U64(c.pruned_symmetry)),
            ("unrealizable", Json::U64(c.unrealizable)),
            ("replayed", Json::U64(c.replayable)),
        ];
        // Sampling keys appear only when sampling was active, so
        // exhaustive reports stay byte-identical across engines.
        if let Some(frac) = self.sample {
            pairs.push(("sample", Json::F64(frac)));
            pairs.push(("sampled", Json::U64(self.sampled)));
        }
        pairs.push(("certified_ok", Json::Bool(self.certified_ok())));
        pairs.push(("protocols", self.protocols.to_json()));
        Json::obj(pairs)
    }
}

/// One protocol's prefix-sharing replay state, reused across schedules.
///
/// Consecutive enumerated schedules differ in a suffix, so consecutive
/// replays of the same protocol produce op streams sharing a prefix. The
/// session keeps one [`IncrementalAnalysis`] loaded with the previous op
/// stream plus a [`Mark`] per op: loading the next stream rewinds to the
/// longest common prefix and appends only the differing suffix — the
/// replay trie is walked implicitly, one branch at a time.
struct CertSession {
    n: usize,
    incr: IncrementalAnalysis,
    ops: Vec<PatternOp>,
    /// `marks[i]` = engine state after `ops[..i]` (so `marks[0]` is the
    /// empty pattern).
    marks: Vec<Mark>,
    /// Reused replay output buffers.
    run: ReplayedOps,
    /// Reused global-checkpoint oracle buffers (min fixpoint, min via
    /// R-graph, max), each `n` entries.
    gc_bufs: [Vec<u32>; 3],
    /// Schedules certified since the engine was last compacted (only
    /// advanced while [`CertifyOptions::compact_interval`] is nonzero).
    since_compaction: u64,
}

impl CertSession {
    fn new(n: usize) -> Self {
        let incr = IncrementalAnalysis::new(n);
        let start = incr.mark();
        CertSession {
            n,
            incr,
            ops: Vec::new(),
            marks: vec![start],
            run: ReplayedOps::default(),
            gc_bufs: [vec![0; n], vec![0; n], vec![0; n]],
            since_compaction: 0,
        }
    }

    /// Rewinds to the longest prefix shared with the loaded stream, then
    /// appends the rest of `self.run.ops`. Returns how many ops were
    /// appended (the prefix-sharing savings are `ops.len() - appended`).
    fn load_run(&mut self) -> u64 {
        let ops = &self.run.ops;
        let mut shared = self
            .ops
            .iter()
            .zip(ops.iter())
            .take_while(|(a, b)| a == b)
            .count();
        if self.incr.try_rewind(self.marks[shared]).is_err() {
            // The engine was compacted since those marks were taken
            // (RewindError::CompactionBoundary): the prefix cannot be
            // shared across the boundary, so replay from the empty
            // pattern — results are those of a fresh engine by
            // construction.
            self.incr = IncrementalAnalysis::new(self.n);
            self.ops.clear();
            self.marks.clear();
            self.marks.push(self.incr.mark());
            shared = 0;
        }
        self.ops.truncate(shared);
        self.marks.truncate(shared + 1);
        self.append_suffix(shared)
    }

    fn append_suffix(&mut self, shared: usize) -> u64 {
        let ops = &self.run.ops;
        let appended = (ops.len() - shared) as u64;
        for &op in &ops[shared..] {
            match op {
                PatternOp::Checkpoint(process) => {
                    self.incr.append_checkpoint(process);
                }
                PatternOp::Send { from, to } => {
                    self.incr.append_send(from, to);
                }
                PatternOp::Deliver(message) => self.incr.append_deliver(message),
            }
            self.ops.push(op);
            self.marks.push(self.incr.mark());
        }
        appended
    }

    /// Compacts the engine to its recovery line once every `interval`
    /// schedules (`0` disables). Called between schedules; if state was
    /// discarded, the next [`CertSession::load_run`] notices the epoch
    /// boundary and replays from the empty pattern.
    fn maybe_compact(&mut self, interval: u64) {
        if interval == 0 {
            return;
        }
        self.since_compaction += 1;
        if self.since_compaction >= interval {
            self.since_compaction = 0;
            self.incr.compact_to_recovery_line();
        }
    }
}

/// Runs one protocol over one schedule and records every failed check.
///
/// All theory checks run on the session's incremental engine: the RDT
/// verdict and untrackable count are maintained online, the chain/CM
/// characterizations and GC oracles are evaluated on the temporarily
/// closed state. Results are identical to a from-scratch batch analysis
/// (held to it by the differential suite in `rdt-rgraph`).
fn certify_schedule(
    protocol: &CertProtocol,
    session: &mut CertSession,
    schedule: &Schedule,
    tally: &mut ProtocolTally,
    max_kept: usize,
) -> u64 {
    protocol.replay_ops(schedule, &mut session.run);
    tally.patterns += 1;
    tally.predicate_mismatches += session.run.predicate_mismatches.len() as u64;
    for mismatch in &session.run.predicate_mismatches {
        tally.note(
            max_kept,
            protocol,
            "predicate-mismatch",
            schedule,
            format!(
                "event {}: oracle says force={}, protocol forced={}",
                mismatch.event_index, mismatch.oracle_forces, mismatch.protocol_forced
            ),
        );
    }

    let appended = session.load_run();
    let CertSession {
        incr, run, gc_bufs, ..
    } = session;
    let records = &run.records;
    incr.with_closed(|view| {
        let rpaths_ok = view.rdt_holds();
        let chains_ok = view.all_chains_doubled();
        let cm_ok = view.all_cm_paths_doubled();
        if rpaths_ok != chains_ok || rpaths_ok != cm_ok {
            tally.note(
                max_kept,
                protocol,
                "characterization-disagreement",
                schedule,
                format!("r-paths={rpaths_ok} chains={chains_ok} cm-paths={cm_ok}"),
            );
        }
        if !rpaths_ok {
            tally.rdt_violations += 1;
            if protocol.claims_rdt() {
                tally.note(
                    max_kept,
                    protocol,
                    "rdt-violation",
                    schedule,
                    format!("{} untrackable R-path(s)", view.violations_capped(16)),
                );
            }
        }

        // Global-checkpoint oracles, per protocol-reported checkpoint, on
        // the closed pattern the view holds. The allocation-free `_into`
        // oracle forms share three buffers across all records; owned
        // `GlobalCheckpoint`s are only materialized on the (rare) note
        // paths, with wording identical to the owned-oracle formulation.
        let [min_buf, via_buf, max_buf] = gc_bufs;
        let gc_of = |exists: bool, buf: &[u32]| exists.then(|| GlobalCheckpoint::new(buf.to_vec()));
        for record in records {
            if record.id.index > view.last_checkpoint_index(record.id.process) {
                tally.note(
                    max_kept,
                    protocol,
                    "missing-checkpoint",
                    schedule,
                    format!("protocol reported {} beyond the pattern", record.id),
                );
                continue;
            }
            tally.gc_checks += 1;
            let members = [record.id];
            let min_ok = view.min_consistent_containing_into(&members, min_buf);
            let via_ok = view.min_consistent_via_rgraph_into(&members, via_buf);
            if min_ok != via_ok || (min_ok && min_buf != via_buf) {
                let fixpoint = gc_of(min_ok, min_buf);
                let via_rgraph = gc_of(via_ok, via_buf);
                tally.note(
                    max_kept,
                    protocol,
                    "min-gc-oracle-disagreement",
                    schedule,
                    format!(
                        "{}: fixpoint {fixpoint:?} != r-graph {via_rgraph:?}",
                        record.id
                    ),
                );
                continue;
            }
            let max_ok = view.max_consistent_containing_into(&members, max_buf);
            match (min_ok, max_ok) {
                (true, true) => {
                    if !min_buf.iter().zip(max_buf.iter()).all(|(lo, hi)| lo <= hi) {
                        let (lo, hi) = (
                            GlobalCheckpoint::new(min_buf.clone()),
                            GlobalCheckpoint::new(max_buf.clone()),
                        );
                        tally.note(
                            max_kept,
                            protocol,
                            "min-above-max",
                            schedule,
                            format!("{}: min {lo} > max {hi}", record.id),
                        );
                    }
                }
                (false, false) => {}
                _ => {
                    let (lo, hi) = (gc_of(min_ok, min_buf), gc_of(max_ok, max_buf));
                    tally.note(
                        max_kept,
                        protocol,
                        "min-max-existence-disagreement",
                        schedule,
                        format!("{}: min {lo:?}, max {hi:?}", record.id),
                    );
                }
            }
            if protocol.claims_rdt() && !min_ok {
                tally.note(
                    max_kept,
                    protocol,
                    "useless-checkpoint",
                    schedule,
                    format!("{} is on a Z-cycle", record.id),
                );
            }
            if protocol.check_reported_min_gc() {
                if let Some(reported) = &record.min_consistent_gc {
                    let matches = min_ok && min_buf.as_slice() == reported.as_slice();
                    if !matches {
                        tally.note(
                            max_kept,
                            protocol,
                            "tdv-min-gc-mismatch",
                            schedule,
                            format!(
                                "{}: saved TDV {:?}, oracle min {:?} (Corollary 4.5)",
                                record.id,
                                reported,
                                min_ok.then_some(&min_buf[..])
                            ),
                        );
                    }
                }
            }
        }
    });
    appended
}

/// Deterministic work tallies of one certification run. Every field is a
/// pure function of (scope, options) — identical for every thread count —
/// so stats can be pinned by goldens; wall time is measured by callers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CertifyStats {
    /// Engine that produced the run.
    pub engine: CertifyEngine,
    /// Orbit-engine enumeration tallies (all zero under the baseline).
    pub orbit: OrbitStats,
    /// Schedules replayed, counted once per schedule (post-sampling).
    pub schedules: u64,
    /// Σ op-stream lengths over every (schedule × protocol) replay — the
    /// volume a no-sharing engine would append.
    pub ops_total: u64,
    /// Ops actually appended to replay engines; prefix sharing and
    /// verdict dedup both show up as `ops_appended < ops_total`.
    pub ops_appended: u64,
    /// Engine load/rewind calls (one per *distinct* op stream under the
    /// orbit engine's verdict sharing).
    pub engine_loads: u64,
    /// (schedule × protocol) replays whose op stream matched an earlier
    /// protocol's for the same schedule and reused its engine verdict.
    pub dedup_hits: u64,
}

impl CertifyStats {
    /// Fraction of the no-sharing replay volume that prefix sharing and
    /// verdict dedup avoided appending (`0.0` when nothing was replayed).
    pub fn prefix_reuse_ratio(&self) -> f64 {
        if self.ops_total == 0 {
            0.0
        } else {
            1.0 - self.ops_appended as f64 / self.ops_total as f64
        }
    }
}

/// Replay-volume counters threaded through both engines.
#[derive(Debug, Default, Clone, Copy)]
struct OpCounters {
    schedules: u64,
    ops_total: u64,
    ops_appended: u64,
    engine_loads: u64,
    dedup_hits: u64,
}

impl OpCounters {
    fn absorb(&mut self, other: &OpCounters) {
        self.schedules += other.schedules;
        self.ops_total += other.ops_total;
        self.ops_appended += other.ops_appended;
        self.engine_loads += other.engine_loads;
        self.dedup_hits += other.dedup_hits;
    }
}

/// The engine-side verdict of one replayed op stream: everything the
/// per-protocol bookkeeping needs, detached from any one protocol.
/// Protocols whose replay of a schedule produced the *identical*
/// [`ReplayedOps`] share one verdict — the theory checks are pure
/// functions of the stream, so computing them once is the same as
/// computing them per protocol (held to the baseline by the
/// engine-differential test). Note details are rendered here, once,
/// with wording identical to the inline formulation in
/// [`certify_schedule`].
#[derive(Debug, Default, Clone)]
struct ScheduleVerdict {
    rpaths_ok: bool,
    /// `characterization-disagreement` detail, when the three offline
    /// characterizations disagreed.
    chars_note: Option<String>,
    /// `rdt-violation` detail (meaningful iff `!rpaths_ok`).
    rdt_note: String,
    records: Vec<RecordVerdict>,
}

/// Per-checkpoint-record slice of a [`ScheduleVerdict`].
#[derive(Debug, Clone)]
enum RecordVerdict {
    /// Record id beyond the pattern (`missing-checkpoint` detail); no GC
    /// check was run.
    Beyond(String),
    /// The two min oracles disagreed (`min-gc-oracle-disagreement`
    /// detail); remaining checks skipped, as inline.
    MinOracleDisagree(String),
    /// Oracles ran to completion.
    Checked {
        /// `min-above-max` or `min-max-existence-disagreement`.
        order_note: Option<(&'static str, String)>,
        /// `useless-checkpoint` detail — `Some` iff no consistent global
        /// checkpoint contains the record; noted for claiming protocols.
        useless: Option<String>,
        /// `tdv-min-gc-mismatch` detail — `Some` iff the record carried
        /// a saved min and it mismatched; noted for TDV protocols.
        tdv_note: Option<String>,
    },
}

/// Loads the session's replayed stream into its engine and evaluates
/// every stream-level theory check into `verdict`. Returns the ops
/// appended to the engine.
fn compute_verdict(session: &mut CertSession, verdict: &mut ScheduleVerdict) -> u64 {
    let appended = session.load_run();
    let CertSession {
        incr, run, gc_bufs, ..
    } = session;
    let records = &run.records;
    verdict.chars_note = None;
    verdict.rdt_note.clear();
    verdict.records.clear();
    incr.with_closed(|view| {
        let rpaths_ok = view.rdt_holds();
        let chains_ok = view.all_chains_doubled();
        let cm_ok = view.all_cm_paths_doubled();
        verdict.rpaths_ok = rpaths_ok;
        if rpaths_ok != chains_ok || rpaths_ok != cm_ok {
            verdict.chars_note = Some(format!(
                "r-paths={rpaths_ok} chains={chains_ok} cm-paths={cm_ok}"
            ));
        }
        if !rpaths_ok {
            verdict.rdt_note = format!("{} untrackable R-path(s)", view.violations_capped(16));
        }
        let [min_buf, via_buf, max_buf] = gc_bufs;
        let gc_of = |exists: bool, buf: &[u32]| exists.then(|| GlobalCheckpoint::new(buf.to_vec()));
        for record in records {
            if record.id.index > view.last_checkpoint_index(record.id.process) {
                verdict.records.push(RecordVerdict::Beyond(format!(
                    "protocol reported {} beyond the pattern",
                    record.id
                )));
                continue;
            }
            let members = [record.id];
            let min_ok = view.min_consistent_containing_into(&members, min_buf);
            let via_ok = view.min_consistent_via_rgraph_into(&members, via_buf);
            if min_ok != via_ok || (min_ok && min_buf != via_buf) {
                let fixpoint = gc_of(min_ok, min_buf);
                let via_rgraph = gc_of(via_ok, via_buf);
                verdict
                    .records
                    .push(RecordVerdict::MinOracleDisagree(format!(
                        "{}: fixpoint {fixpoint:?} != r-graph {via_rgraph:?}",
                        record.id
                    )));
                continue;
            }
            let max_ok = view.max_consistent_containing_into(&members, max_buf);
            let order_note = match (min_ok, max_ok) {
                (true, true) => {
                    if min_buf.iter().zip(max_buf.iter()).all(|(lo, hi)| lo <= hi) {
                        None
                    } else {
                        let (lo, hi) = (
                            GlobalCheckpoint::new(min_buf.clone()),
                            GlobalCheckpoint::new(max_buf.clone()),
                        );
                        Some((
                            "min-above-max",
                            format!("{}: min {lo} > max {hi}", record.id),
                        ))
                    }
                }
                (false, false) => None,
                _ => {
                    let (lo, hi) = (gc_of(min_ok, min_buf), gc_of(max_ok, max_buf));
                    Some((
                        "min-max-existence-disagreement",
                        format!("{}: min {lo:?}, max {hi:?}", record.id),
                    ))
                }
            };
            let useless = (!min_ok).then(|| format!("{} is on a Z-cycle", record.id));
            let tdv_note = match &record.min_consistent_gc {
                Some(reported) if !(min_ok && min_buf.as_slice() == reported.as_slice()) => {
                    Some(format!(
                        "{}: saved TDV {:?}, oracle min {:?} (Corollary 4.5)",
                        record.id,
                        reported,
                        min_ok.then_some(&min_buf[..])
                    ))
                }
                _ => None,
            };
            verdict.records.push(RecordVerdict::Checked {
                order_note,
                useless,
                tdv_note,
            });
        }
    });
    appended
}

/// Applies a shared [`ScheduleVerdict`] to one protocol's tally, in the
/// exact note order of the inline [`certify_schedule`].
fn apply_verdict(
    protocol: &CertProtocol,
    schedule: &Schedule,
    run: &ReplayedOps,
    verdict: &ScheduleVerdict,
    tally: &mut ProtocolTally,
    max_kept: usize,
) {
    tally.patterns += 1;
    tally.predicate_mismatches += run.predicate_mismatches.len() as u64;
    for mismatch in &run.predicate_mismatches {
        tally.note(
            max_kept,
            protocol,
            "predicate-mismatch",
            schedule,
            format!(
                "event {}: oracle says force={}, protocol forced={}",
                mismatch.event_index, mismatch.oracle_forces, mismatch.protocol_forced
            ),
        );
    }
    if let Some(detail) = &verdict.chars_note {
        tally.note(
            max_kept,
            protocol,
            "characterization-disagreement",
            schedule,
            detail.clone(),
        );
    }
    if !verdict.rpaths_ok {
        tally.rdt_violations += 1;
        if protocol.claims_rdt() {
            tally.note(
                max_kept,
                protocol,
                "rdt-violation",
                schedule,
                verdict.rdt_note.clone(),
            );
        }
    }
    for record in &verdict.records {
        match record {
            RecordVerdict::Beyond(detail) => {
                tally.note(
                    max_kept,
                    protocol,
                    "missing-checkpoint",
                    schedule,
                    detail.clone(),
                );
            }
            RecordVerdict::MinOracleDisagree(detail) => {
                tally.gc_checks += 1;
                tally.note(
                    max_kept,
                    protocol,
                    "min-gc-oracle-disagreement",
                    schedule,
                    detail.clone(),
                );
            }
            RecordVerdict::Checked {
                order_note,
                useless,
                tdv_note,
            } => {
                tally.gc_checks += 1;
                if let Some((kind, detail)) = order_note {
                    tally.note(max_kept, protocol, kind, schedule, detail.clone());
                }
                if protocol.claims_rdt() {
                    if let Some(detail) = useless {
                        tally.note(
                            max_kept,
                            protocol,
                            "useless-checkpoint",
                            schedule,
                            detail.clone(),
                        );
                    }
                }
                if protocol.check_reported_min_gc() {
                    if let Some(detail) = tdv_note {
                        tally.note(
                            max_kept,
                            protocol,
                            "tdv-min-gc-mismatch",
                            schedule,
                            detail.clone(),
                        );
                    }
                }
            }
        }
    }
}

fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism().map_or(1, |p| p.get())
    } else {
        requested
    }
}

fn build_report(
    scope: &Scope,
    counts: EnumerationCounts,
    protocols: &[CertProtocol],
    merged: Vec<ProtocolTally>,
    sample: Option<f64>,
    sampled: u64,
) -> CertifyReport {
    let protocols = protocols
        .iter()
        .zip(merged)
        .map(|(protocol, tally)| ProtocolReport {
            name: protocol.name(),
            claims_rdt: protocol.claims_rdt(),
            expected_clean: protocol.expected_clean(),
            patterns: tally.patterns,
            rdt_violations: tally.rdt_violations,
            predicate_mismatches: tally.predicate_mismatches,
            gc_checks: tally.gc_checks,
            counterexample_total: tally.counterexample_total,
            counterexamples: tally.counterexamples,
        })
        .collect();
    CertifyReport {
        scope: *scope,
        counts,
        sample,
        sampled,
        protocols,
    }
}

/// Exhaustively certifies `options.protocols` over `scope` (see
/// [`certify_with_stats`] for the work tallies).
pub fn certify(scope: &Scope, options: &CertifyOptions) -> CertifyReport {
    certify_with_stats(scope, options).0
}

/// [`certify`] plus the run's deterministic work tallies.
///
/// Under [`CertifyEngine::OrbitPruned`], work units are the parallel
/// items, fanned out over the work-stealing engine; per-unit tallies are
/// merged in unit order — which equals the baseline's layout order — so
/// the report is byte-identical for every thread count *and* across
/// engines. Each worker owns one prefix-sharing [`CertSession`] per
/// protocol; the unit stream's prefix ordering keeps consecutive op
/// streams similar, which is what the sessions' rewind-and-append feeds
/// on.
pub fn certify_with_stats(
    scope: &Scope,
    options: &CertifyOptions,
) -> (CertifyReport, CertifyStats) {
    match options.engine {
        CertifyEngine::OrbitPruned => certify_orbit(scope, options),
        CertifyEngine::PrefixBaseline => certify_baseline(scope, options),
    }
}

/// Per-unit result of the orbit pipeline (merged in unit order).
struct UnitOutcome {
    counts: EnumerationCounts,
    orbit: OrbitStats,
    tallies: Vec<ProtocolTally>,
    ops: OpCounters,
}

/// Worker-local state of the orbit pipeline: enumeration scratch, one
/// replay session per protocol, and the reused verdict slots.
struct OrbitWorker {
    scratch: OrbitScratch,
    sessions: Vec<CertSession>,
    verdicts: Vec<ScheduleVerdict>,
    rep_of: Vec<usize>,
}

fn certify_orbit(scope: &Scope, options: &CertifyOptions) -> (CertifyReport, CertifyStats) {
    let threads = resolve_threads(options.threads);
    let protocols = &options.protocols;
    let max_kept = options.max_counterexamples;
    let compact_interval = options.compact_interval;
    let n = scope.processes;
    let sample = options.sample.filter(|frac| *frac < 1.0);
    let threshold = match sample {
        Some(frac) => (frac.max(0.0) * u64::MAX as f64) as u64,
        None => u64::MAX,
    };
    let ctx = OrbitContext::new(scope, sample.is_some());
    let units = enumerate_units(scope);

    let progress = options.progress;
    let total_units = units.len();
    let watch = Stopwatch::start();
    let mut seen_structures = 0u64;
    let mut seen_pruned = 0u64;
    let mut seen_schedules = 0u64;
    let mut last_emit = 0.0f64;
    let outcomes = parallel_map_indexed_observed(
        &units,
        threads,
        || OrbitWorker {
            scratch: OrbitScratch::new(scope),
            sessions: protocols.iter().map(|_| CertSession::new(n)).collect(),
            verdicts: vec![ScheduleVerdict::default(); protocols.len()],
            rep_of: Vec::with_capacity(protocols.len()),
        },
        |worker, _, unit| {
            let mut counts = EnumerationCounts::default();
            let mut orbit = OrbitStats::default();
            let mut tallies = vec![ProtocolTally::default(); protocols.len()];
            let mut ops = OpCounters::default();
            let OrbitWorker {
                scratch,
                sessions,
                verdicts,
                rep_of,
            } = worker;
            ctx.run_unit(
                unit,
                scratch,
                &mut counts,
                &mut orbit,
                &mut |schedule, meta| {
                    if meta.key > threshold {
                        return;
                    }
                    ops.schedules += 1;
                    for (protocol, session) in protocols.iter().zip(sessions.iter_mut()) {
                        protocol.replay_ops(schedule, &mut session.run);
                    }
                    // Verdict sharing: the first protocol with a given
                    // replayed stream is its representative; the rest reuse
                    // its engine verdict without touching their engines.
                    rep_of.clear();
                    for i in 0..protocols.len() {
                        ops.ops_total += sessions[i].run.ops.len() as u64;
                        let rep = (0..i)
                            .find(|&j| sessions[j].run == sessions[i].run)
                            .unwrap_or(i);
                        rep_of.push(rep);
                        if rep == i {
                            ops.engine_loads += 1;
                        } else {
                            ops.dedup_hits += 1;
                        }
                    }
                    for i in 0..protocols.len() {
                        if rep_of[i] == i {
                            ops.ops_appended += compute_verdict(&mut sessions[i], &mut verdicts[i]);
                        }
                    }
                    for (i, protocol) in protocols.iter().enumerate() {
                        apply_verdict(
                            protocol,
                            schedule,
                            &sessions[i].run,
                            &verdicts[rep_of[i]],
                            &mut tallies[i],
                            max_kept,
                        );
                    }
                    for session in sessions.iter_mut() {
                        session.maybe_compact(compact_interval);
                    }
                },
            );
            UnitOutcome {
                counts,
                orbit,
                tallies,
                ops,
            }
        },
        |done, outcome| {
            if !progress {
                return;
            }
            seen_structures += outcome.counts.structures;
            seen_pruned += outcome.counts.pruned_symmetry;
            seen_schedules += outcome.ops.schedules;
            let elapsed = watch.elapsed_secs();
            if elapsed - last_emit >= 1.0 || done == total_units {
                last_emit = elapsed;
                let frac = done as f64 / total_units.max(1) as f64;
                let eta = elapsed * (1.0 - frac) / frac.max(1e-9);
                eprintln!(
                    "certify: {done}/{total_units} units | {seen_structures} structures \
                     ({rate:.0}/s) | {seen_pruned} pruned by symmetry | {seen_schedules} \
                     schedules replayed | ETA {eta:.0}s",
                    rate = seen_structures as f64 / elapsed.max(1e-9),
                );
            }
        },
    );

    let mut counts = EnumerationCounts::default();
    let mut orbit = OrbitStats::default();
    let mut op_counters = OpCounters::default();
    let mut merged = vec![ProtocolTally::default(); protocols.len()];
    for outcome in outcomes {
        counts.absorb(&outcome.counts);
        orbit.absorb(&outcome.orbit);
        op_counters.absorb(&outcome.ops);
        for (into, tally) in merged.iter_mut().zip(outcome.tallies) {
            into.absorb(tally, max_kept);
        }
    }
    let report = build_report(
        scope,
        counts,
        protocols,
        merged,
        sample,
        op_counters.schedules,
    );
    let stats = CertifyStats {
        engine: CertifyEngine::OrbitPruned,
        orbit,
        schedules: op_counters.schedules,
        ops_total: op_counters.ops_total,
        ops_appended: op_counters.ops_appended,
        engine_loads: op_counters.engine_loads,
        dedup_hits: op_counters.dedup_hits,
    };
    (report, stats)
}

/// The previous layout-fan-out pipeline, byte-for-byte: layouts are the
/// parallel work units, every (schedule × protocol) is checked inline
/// with no orbit pruning beyond the post-hoc canonicality filter and no
/// verdict sharing. Kept as the differential baseline the orbit engine
/// is benchmarked against.
fn certify_baseline(scope: &Scope, options: &CertifyOptions) -> (CertifyReport, CertifyStats) {
    let threads = resolve_threads(options.threads);
    let layouts = enumerate_layouts(scope);
    let perms = permutations(scope.processes);
    let protocols = &options.protocols;
    let max_kept = options.max_counterexamples;
    let compact_interval = options.compact_interval;
    let n = scope.processes;

    let per_layout = parallel_map_indexed(
        &layouts,
        threads,
        || -> (Vec<CertSession>, LayoutScratch) {
            let sessions = protocols.iter().map(|_| CertSession::new(n)).collect();
            (sessions, LayoutScratch::new(n))
        },
        |(sessions, scratch), _, layout| {
            let mut tallies = vec![ProtocolTally::default(); protocols.len()];
            let mut ops = OpCounters::default();
            let counts = visit_layout(layout, &perms, scratch, &mut |schedule| {
                ops.schedules += 1;
                for ((protocol, session), tally) in protocols
                    .iter()
                    .zip(sessions.iter_mut())
                    .zip(tallies.iter_mut())
                {
                    ops.ops_appended +=
                        certify_schedule(protocol, session, schedule, tally, max_kept);
                    ops.ops_total += session.run.ops.len() as u64;
                    ops.engine_loads += 1;
                    session.maybe_compact(compact_interval);
                }
            });
            (counts, tallies, ops)
        },
        |_| {},
    );

    let mut counts = EnumerationCounts::default();
    let mut op_counters = OpCounters::default();
    let mut merged = vec![ProtocolTally::default(); protocols.len()];
    for (layout_counts, tallies, ops) in per_layout {
        counts.absorb(&layout_counts);
        op_counters.absorb(&ops);
        for (into, tally) in merged.iter_mut().zip(tallies) {
            into.absorb(tally, max_kept);
        }
    }
    let report = build_report(
        scope,
        counts,
        protocols,
        merged,
        None,
        op_counters.schedules,
    );
    let stats = CertifyStats {
        engine: CertifyEngine::PrefixBaseline,
        orbit: OrbitStats::default(),
        schedules: op_counters.schedules,
        ops_total: op_counters.ops_total,
        ops_appended: op_counters.ops_appended,
        engine_loads: op_counters.engine_loads,
        dedup_hits: op_counters.dedup_hits,
    };
    (report, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(scope: Scope, threads: usize) -> CertifyReport {
        let options = CertifyOptions {
            threads,
            ..CertifyOptions::default()
        };
        certify(&scope, &options)
    }

    #[test]
    fn tiny_scope_certifies_cleanly() {
        let report = quick(Scope::tiny(), 1);
        for p in &report.protocols {
            assert_eq!(
                p.counterexample_total, 0,
                "{}: {:?}",
                p.name, p.counterexamples
            );
        }
        // n=2: the weakened control is exempt, so the verdict is clean.
        assert!(report.certified_ok(), "{}", report.render());
    }

    #[test]
    fn weakened_control_is_caught_at_three_processes() {
        let scope = Scope::with_basics(3, 2, 0).unwrap();
        let report = quick(scope, 2);
        let weak = report
            .protocol("bhmr-c2only")
            .expect("control in default set");
        assert!(weak.counterexample_total > 0, "{}", report.render());
        assert!(weak.rdt_violations > 0);
        assert!(weak
            .counterexamples
            .iter()
            .any(|cex| cex.kind == "rdt-violation"));
        let full = report.protocol("bhmr").expect("bhmr in default set");
        assert_eq!(full.counterexample_total, 0, "{:?}", full.counterexamples);
        assert!(report.certified_ok(), "{}", report.render());
    }

    #[test]
    fn non_claiming_protocols_violate_without_counterexamples() {
        let scope = Scope::with_basics(3, 2, 0).unwrap();
        let report = quick(scope, 2);
        let unco = report.protocol("uncoordinated").expect("in default set");
        assert!(unco.rdt_violations > 0, "{}", report.render());
        assert_eq!(unco.counterexample_total, 0);
    }

    #[test]
    fn report_is_identical_for_every_thread_count() {
        let scope = Scope::with_basics(3, 2, 1).unwrap();
        let options = CertifyOptions {
            threads: 1,
            protocols: vec![
                crate::CertProtocol::Kind(rdt_core::ProtocolKind::Bhmr),
                crate::CertProtocol::WeakenedBhmrC2Only,
            ],
            max_counterexamples: 4,
            ..CertifyOptions::default()
        };
        let one = certify(&scope, &options).to_json().pretty();
        for threads in [2, 5, 8] {
            let many = certify(
                &scope,
                &CertifyOptions {
                    threads,
                    ..options.clone()
                },
            )
            .to_json()
            .pretty();
            assert_eq!(one, many, "threads={threads}");
        }
    }

    #[test]
    fn report_is_identical_under_compaction() {
        // Compacting between schedules trades prefix sharing for bounded
        // resident state; the report must stay byte-identical for every
        // interval and thread count.
        let scope = Scope::with_basics(3, 2, 1).unwrap();
        let baseline = quick(scope, 1).to_json().pretty();
        for interval in [1u64, 3] {
            for threads in [1usize, 2] {
                let options = CertifyOptions {
                    threads,
                    compact_interval: interval,
                    ..CertifyOptions::default()
                };
                let compacted = certify(&scope, &options).to_json().pretty();
                assert_eq!(baseline, compacted, "interval={interval} threads={threads}");
            }
        }
    }

    #[test]
    fn gc_oracles_run_on_protocol_checkpoints() {
        let report = quick(Scope::tiny(), 1);
        let fdi = report.protocol("fdi").expect("fdi in default set");
        assert!(fdi.gc_checks > 0);
    }

    /// The load-bearing equivalence of this module: the orbit-pruned
    /// engine's report is byte-identical to the baseline's, for every
    /// thread count — counterexample selection, note wording, counts.
    #[test]
    fn engines_agree_byte_for_byte() {
        for (n, m, b) in [(2, 2, 1), (3, 2, 1)] {
            let scope = Scope::with_basics(n, m, b).unwrap();
            let baseline = certify(
                &scope,
                &CertifyOptions {
                    threads: 1,
                    engine: CertifyEngine::PrefixBaseline,
                    ..CertifyOptions::default()
                },
            )
            .to_json()
            .pretty();
            for threads in [1, 3] {
                let orbit = certify(
                    &scope,
                    &CertifyOptions {
                        threads,
                        engine: CertifyEngine::OrbitPruned,
                        ..CertifyOptions::default()
                    },
                )
                .to_json()
                .pretty();
                assert_eq!(baseline, orbit, "{n},{m},{b} threads={threads}");
            }
        }
    }

    /// Verdict sharing fires (identical protocol streams are common) and
    /// prefix reuse is visible in the stats — while the report stays
    /// byte-identical across thread counts (covered above). Stats are
    /// themselves deterministic at a fixed thread count of 1.
    #[test]
    fn orbit_stats_are_deterministic_and_show_reuse() {
        let scope = Scope::with_basics(3, 2, 0).unwrap();
        let options = CertifyOptions {
            threads: 1,
            ..CertifyOptions::default()
        };
        let (_, one) = certify_with_stats(&scope, &options);
        let (_, two) = certify_with_stats(&scope, &options);
        assert_eq!(one, two);
        assert!(one.dedup_hits > 0, "{one:?}");
        assert!(one.ops_appended < one.ops_total, "{one:?}");
        assert!(one.prefix_reuse_ratio() > 0.0);
        assert!(one.orbit.layouts_pruned + one.orbit.subtree_cuts > 0);
        assert!(one.schedules > 0 && one.orbit.units > 0);
    }

    /// Sampling is deterministic, reported in the JSON only when active,
    /// and replays a strict, repeatable subset.
    #[test]
    fn sampling_is_deterministic_and_reported() {
        let scope = Scope::with_basics(3, 2, 1).unwrap();
        let sampled_opts = CertifyOptions {
            threads: 1,
            sample: Some(0.5),
            ..CertifyOptions::default()
        };
        let (first, _) = certify_with_stats(&scope, &sampled_opts);
        let (again, _) = certify_with_stats(
            &scope,
            &CertifyOptions {
                threads: 2,
                ..sampled_opts.clone()
            },
        );
        assert_eq!(first.to_json().pretty(), again.to_json().pretty());
        assert!(first.sampled > 0 && first.sampled < first.counts.replayable);
        assert_eq!(first.counts.replayable, quick(scope, 1).counts.replayable);
        let json = first.to_json().pretty();
        assert!(json.contains("\"sample\""), "{json}");
        let exhaustive = quick(scope, 1).to_json().pretty();
        assert!(!exhaustive.contains("\"sample\""), "{exhaustive}");
        for p in &first.protocols {
            assert_eq!(p.patterns, first.sampled);
        }
    }

    /// `sample: Some(1.0)` (and above) means exhaustive — byte-identical
    /// to no sampling at all.
    #[test]
    fn full_fraction_sampling_is_exhaustive() {
        let scope = Scope::with_basics(2, 2, 1).unwrap();
        let full = quick(scope, 1).to_json().pretty();
        let one = certify(
            &scope,
            &CertifyOptions {
                threads: 1,
                sample: Some(1.0),
                ..CertifyOptions::default()
            },
        )
        .to_json()
        .pretty();
        assert_eq!(full, one);
    }
}
