//! The certifier: replays every protocol over every enumerated pattern
//! and checks the outcomes against the offline theory.
//!
//! Per (canonical realizable schedule × protocol) the certifier checks:
//!
//! 1. **RDT conformance** — the three offline characterizations (R-path
//!    trackability, doubled message chains, doubled causal-message
//!    paths) are evaluated on the replayed pattern; they must agree with
//!    each other on *every* pattern, and must all hold for protocols
//!    that claim RDT.
//! 2. **Predicate conformance** — the protocol's forcing decisions match
//!    an independent re-evaluation of its predicate
//!    (see [`crate::replay`]).
//! 3. **Global-checkpoint oracles** — for every checkpoint the protocol
//!    took, the orphan-fixpoint minimum consistent global checkpoint
//!    equals the R-graph-reachability one; minimum and maximum agree on
//!    existence and are ordered; and for RDT dependency-tracking
//!    protocols the `TDV` saved with the checkpoint *is* that minimum
//!    (Corollary 4.5).
//!
//! Any failed check is a [`Counterexample`] carrying the schedule that
//! reproduces it. The deliberately weakened BHMR variant must produce
//! counterexamples — the report records that expectation separately so a
//! certifier that has gone blind fails loudly.

use rdt_json::{Json, ToJson};
use rdt_rgraph::{GlobalCheckpoint, IncrementalAnalysis, Mark};
use rdt_sim::parallel_map_indexed;

use crate::enumerate::{
    enumerate_layouts, permutations, visit_layout, EnumerationCounts, LayoutScratch, Schedule,
};
use crate::replay::{CertProtocol, PatternOp, ReplayedOps};
use crate::Scope;

/// One failed check, with everything needed to reproduce it by hand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counterexample {
    /// Protocol the check failed for.
    pub protocol: &'static str,
    /// Failed check, as a stable slug (e.g. `"rdt-violation"`).
    pub kind: &'static str,
    /// The schedule, rendered (see [`Schedule::render`]).
    pub schedule: String,
    /// Human-readable specifics.
    pub detail: String,
}

impl ToJson for Counterexample {
    fn to_json(&self) -> Json {
        Json::obj([
            ("protocol", Json::Str(self.protocol.to_string())),
            ("kind", Json::Str(self.kind.to_string())),
            ("schedule", Json::Str(self.schedule.clone())),
            ("detail", Json::Str(self.detail.clone())),
        ])
    }
}

/// Per-protocol tallies, merged across workers in deterministic order.
#[derive(Debug, Default, Clone)]
struct ProtocolTally {
    patterns: u64,
    rdt_violations: u64,
    predicate_mismatches: u64,
    gc_checks: u64,
    counterexample_total: u64,
    counterexamples: Vec<Counterexample>,
}

impl ProtocolTally {
    fn note(
        &mut self,
        max_kept: usize,
        protocol: &CertProtocol,
        kind: &'static str,
        schedule: &Schedule,
        detail: String,
    ) {
        self.counterexample_total += 1;
        if self.counterexamples.len() < max_kept {
            self.counterexamples.push(Counterexample {
                protocol: protocol.name(),
                kind,
                schedule: schedule.render(),
                detail,
            });
        }
    }

    fn absorb(&mut self, other: ProtocolTally, max_kept: usize) {
        self.patterns += other.patterns;
        self.rdt_violations += other.rdt_violations;
        self.predicate_mismatches += other.predicate_mismatches;
        self.gc_checks += other.gc_checks;
        self.counterexample_total += other.counterexample_total;
        for cex in other.counterexamples {
            if self.counterexamples.len() < max_kept {
                self.counterexamples.push(cex);
            }
        }
    }
}

/// Certification options.
#[derive(Debug, Clone)]
pub struct CertifyOptions {
    /// Worker threads; `0` resolves to the machine's available
    /// parallelism. The report is byte-identical for every thread count.
    pub threads: usize,
    /// Protocols to certify (default: every shipped protocol plus the
    /// weakened BHMR control).
    pub protocols: Vec<CertProtocol>,
    /// Counterexamples *kept* per protocol (all are counted).
    pub max_counterexamples: usize,
    /// Compact each replay session's engine to its recovery line every
    /// this many schedules (`0` disables). Bounds the engine's resident
    /// closure at large scopes; the next schedule rebuilds from the empty
    /// pattern instead of sharing a prefix across the compaction point,
    /// so the report stays byte-identical for every interval.
    pub compact_interval: u64,
}

impl Default for CertifyOptions {
    fn default() -> Self {
        CertifyOptions {
            threads: 0,
            protocols: CertProtocol::default_set(),
            max_counterexamples: 8,
            compact_interval: 0,
        }
    }
}

/// Per-protocol section of a [`CertifyReport`].
#[derive(Debug, Clone)]
pub struct ProtocolReport {
    /// Protocol name.
    pub name: &'static str,
    /// Whether the protocol claims RDT.
    pub claims_rdt: bool,
    /// Whether a clean report is expected (false only for the weakened
    /// control).
    pub expected_clean: bool,
    /// Patterns replayed.
    pub patterns: u64,
    /// Replayed patterns violating RDT (counterexamples iff claiming).
    pub rdt_violations: u64,
    /// Forcing-predicate disagreements with the independent oracle.
    pub predicate_mismatches: u64,
    /// Checkpoints put through the min/max consistent-GC oracles.
    pub gc_checks: u64,
    /// Total failed checks (also counts dropped counterexamples).
    pub counterexample_total: u64,
    /// Kept counterexamples, at most `max_counterexamples`.
    pub counterexamples: Vec<Counterexample>,
}

impl ToJson for ProtocolReport {
    fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::Str(self.name.to_string())),
            ("claims_rdt", Json::Bool(self.claims_rdt)),
            ("expected_clean", Json::Bool(self.expected_clean)),
            ("patterns", Json::U64(self.patterns)),
            ("rdt_violations", Json::U64(self.rdt_violations)),
            ("predicate_mismatches", Json::U64(self.predicate_mismatches)),
            ("gc_checks", Json::U64(self.gc_checks)),
            ("counterexample_total", Json::U64(self.counterexample_total)),
            ("counterexamples", self.counterexamples.to_json()),
        ])
    }
}

/// The certification verdict over one scope.
#[derive(Debug, Clone)]
pub struct CertifyReport {
    /// The exhaustively covered scope.
    pub scope: Scope,
    /// Enumeration tallies (shared by all protocols).
    pub counts: EnumerationCounts,
    /// Per-protocol results, in [`CertifyOptions::protocols`] order.
    pub protocols: Vec<ProtocolReport>,
}

impl CertifyReport {
    /// `true` iff every protocol expected to be clean has zero failed
    /// checks **and** every protocol expected to be caught (the weakened
    /// control) produced at least one counterexample. Note the second
    /// half only binds at scopes large enough for `C1` to matter
    /// (`n >= 3`, `m >= 2`); below that the control is vacuously
    /// indistinguishable and exempt.
    pub fn certified_ok(&self) -> bool {
        let control_binds = self.scope.processes >= 3 && self.scope.messages >= 2;
        self.protocols.iter().all(|p| {
            if p.expected_clean {
                p.counterexample_total == 0
            } else {
                !control_binds || p.counterexample_total > 0
            }
        })
    }

    /// The per-protocol section for `name`, if certified.
    pub fn protocol(&self, name: &str) -> Option<&ProtocolReport> {
        self.protocols.iter().find(|p| p.name == name)
    }

    /// Multi-line human-readable rendering.
    pub fn render(&self) -> String {
        let c = &self.counts;
        let mut out = format!(
            "scope {}: {} structures, {} canonical ({} pruned by symmetry), \
             {} unrealizable, {} patterns replayed\n",
            self.scope, c.structures, c.canonical, c.pruned_symmetry, c.unrealizable, c.replayable,
        );
        let control_binds = self.scope.processes >= 3 && self.scope.messages >= 2;
        for p in &self.protocols {
            let verdict = if p.counterexample_total == 0 {
                if p.expected_clean {
                    "ok".to_string()
                } else if control_binds {
                    "MISSED (control produced no counterexample)".to_string()
                } else {
                    "control not binding at this scope (needs n>=3, m>=2)".to_string()
                }
            } else if p.expected_clean {
                format!("FAILED ({} counterexamples)", p.counterexample_total)
            } else {
                format!(
                    "caught as expected ({} counterexamples)",
                    p.counterexample_total
                )
            };
            out.push_str(&format!(
                "  {:14} claims_rdt={:5} rdt_violations={:6} predicate_mismatches={} gc_checks={:6}  {}\n",
                p.name, p.claims_rdt, p.rdt_violations, p.predicate_mismatches, p.gc_checks, verdict,
            ));
            for cex in &p.counterexamples {
                out.push_str(&format!(
                    "    [{}] {}: {}\n",
                    cex.kind, cex.schedule, cex.detail
                ));
            }
        }
        out.push_str(&format!(
            "verdict: {}\n",
            if self.certified_ok() {
                "CERTIFIED"
            } else {
                "NOT CERTIFIED"
            }
        ));
        out
    }
}

impl ToJson for CertifyReport {
    fn to_json(&self) -> Json {
        let c = &self.counts;
        Json::obj([
            ("scope", Json::Str(self.scope.to_string())),
            ("processes", Json::U64(self.scope.processes as u64)),
            ("messages", Json::U64(self.scope.messages as u64)),
            ("basics", Json::U64(self.scope.basics as u64)),
            ("enumerated", Json::U64(c.structures)),
            ("canonical", Json::U64(c.canonical)),
            ("pruned_symmetry", Json::U64(c.pruned_symmetry)),
            ("unrealizable", Json::U64(c.unrealizable)),
            ("replayed", Json::U64(c.replayable)),
            ("certified_ok", Json::Bool(self.certified_ok())),
            ("protocols", self.protocols.to_json()),
        ])
    }
}

/// One protocol's prefix-sharing replay state, reused across schedules.
///
/// Consecutive enumerated schedules differ in a suffix, so consecutive
/// replays of the same protocol produce op streams sharing a prefix. The
/// session keeps one [`IncrementalAnalysis`] loaded with the previous op
/// stream plus a [`Mark`] per op: loading the next stream rewinds to the
/// longest common prefix and appends only the differing suffix — the
/// replay trie is walked implicitly, one branch at a time.
struct CertSession {
    n: usize,
    incr: IncrementalAnalysis,
    ops: Vec<PatternOp>,
    /// `marks[i]` = engine state after `ops[..i]` (so `marks[0]` is the
    /// empty pattern).
    marks: Vec<Mark>,
    /// Reused replay output buffers.
    run: ReplayedOps,
    /// Reused global-checkpoint oracle buffers (min fixpoint, min via
    /// R-graph, max), each `n` entries.
    gc_bufs: [Vec<u32>; 3],
    /// Schedules certified since the engine was last compacted (only
    /// advanced while [`CertifyOptions::compact_interval`] is nonzero).
    since_compaction: u64,
}

impl CertSession {
    fn new(n: usize) -> Self {
        let incr = IncrementalAnalysis::new(n);
        let start = incr.mark();
        CertSession {
            n,
            incr,
            ops: Vec::new(),
            marks: vec![start],
            run: ReplayedOps::default(),
            gc_bufs: [vec![0; n], vec![0; n], vec![0; n]],
            since_compaction: 0,
        }
    }

    /// Rewinds to the longest prefix shared with the loaded stream, then
    /// appends the rest of `self.run.ops`.
    fn load_run(&mut self) {
        let ops = &self.run.ops;
        let mut shared = self
            .ops
            .iter()
            .zip(ops.iter())
            .take_while(|(a, b)| a == b)
            .count();
        if self.incr.try_rewind(self.marks[shared]).is_err() {
            // The engine was compacted since those marks were taken
            // (RewindError::CompactionBoundary): the prefix cannot be
            // shared across the boundary, so replay from the empty
            // pattern — results are those of a fresh engine by
            // construction.
            self.incr = IncrementalAnalysis::new(self.n);
            self.ops.clear();
            self.marks.clear();
            self.marks.push(self.incr.mark());
            shared = 0;
        }
        self.ops.truncate(shared);
        self.marks.truncate(shared + 1);
        self.append_suffix(shared);
    }

    fn append_suffix(&mut self, shared: usize) {
        let ops = &self.run.ops;
        for &op in &ops[shared..] {
            match op {
                PatternOp::Checkpoint(process) => {
                    self.incr.append_checkpoint(process);
                }
                PatternOp::Send { from, to } => {
                    self.incr.append_send(from, to);
                }
                PatternOp::Deliver(message) => self.incr.append_deliver(message),
            }
            self.ops.push(op);
            self.marks.push(self.incr.mark());
        }
    }

    /// Compacts the engine to its recovery line once every `interval`
    /// schedules (`0` disables). Called between schedules; if state was
    /// discarded, the next [`CertSession::load_run`] notices the epoch
    /// boundary and replays from the empty pattern.
    fn maybe_compact(&mut self, interval: u64) {
        if interval == 0 {
            return;
        }
        self.since_compaction += 1;
        if self.since_compaction >= interval {
            self.since_compaction = 0;
            self.incr.compact_to_recovery_line();
        }
    }
}

/// Runs one protocol over one schedule and records every failed check.
///
/// All theory checks run on the session's incremental engine: the RDT
/// verdict and untrackable count are maintained online, the chain/CM
/// characterizations and GC oracles are evaluated on the temporarily
/// closed state. Results are identical to a from-scratch batch analysis
/// (held to it by the differential suite in `rdt-rgraph`).
fn certify_schedule(
    protocol: &CertProtocol,
    session: &mut CertSession,
    schedule: &Schedule,
    tally: &mut ProtocolTally,
    max_kept: usize,
) {
    protocol.replay_ops(schedule, &mut session.run);
    tally.patterns += 1;
    tally.predicate_mismatches += session.run.predicate_mismatches.len() as u64;
    for mismatch in &session.run.predicate_mismatches {
        tally.note(
            max_kept,
            protocol,
            "predicate-mismatch",
            schedule,
            format!(
                "event {}: oracle says force={}, protocol forced={}",
                mismatch.event_index, mismatch.oracle_forces, mismatch.protocol_forced
            ),
        );
    }

    session.load_run();
    let CertSession {
        incr, run, gc_bufs, ..
    } = session;
    let records = &run.records;
    incr.with_closed(|view| {
        let rpaths_ok = view.rdt_holds();
        let chains_ok = view.all_chains_doubled();
        let cm_ok = view.all_cm_paths_doubled();
        if rpaths_ok != chains_ok || rpaths_ok != cm_ok {
            tally.note(
                max_kept,
                protocol,
                "characterization-disagreement",
                schedule,
                format!("r-paths={rpaths_ok} chains={chains_ok} cm-paths={cm_ok}"),
            );
        }
        if !rpaths_ok {
            tally.rdt_violations += 1;
            if protocol.claims_rdt() {
                tally.note(
                    max_kept,
                    protocol,
                    "rdt-violation",
                    schedule,
                    format!("{} untrackable R-path(s)", view.violations_capped(16)),
                );
            }
        }

        // Global-checkpoint oracles, per protocol-reported checkpoint, on
        // the closed pattern the view holds. The allocation-free `_into`
        // oracle forms share three buffers across all records; owned
        // `GlobalCheckpoint`s are only materialized on the (rare) note
        // paths, with wording identical to the owned-oracle formulation.
        let [min_buf, via_buf, max_buf] = gc_bufs;
        let gc_of = |exists: bool, buf: &[u32]| exists.then(|| GlobalCheckpoint::new(buf.to_vec()));
        for record in records {
            if record.id.index > view.last_checkpoint_index(record.id.process) {
                tally.note(
                    max_kept,
                    protocol,
                    "missing-checkpoint",
                    schedule,
                    format!("protocol reported {} beyond the pattern", record.id),
                );
                continue;
            }
            tally.gc_checks += 1;
            let members = [record.id];
            let min_ok = view.min_consistent_containing_into(&members, min_buf);
            let via_ok = view.min_consistent_via_rgraph_into(&members, via_buf);
            if min_ok != via_ok || (min_ok && min_buf != via_buf) {
                let fixpoint = gc_of(min_ok, min_buf);
                let via_rgraph = gc_of(via_ok, via_buf);
                tally.note(
                    max_kept,
                    protocol,
                    "min-gc-oracle-disagreement",
                    schedule,
                    format!(
                        "{}: fixpoint {fixpoint:?} != r-graph {via_rgraph:?}",
                        record.id
                    ),
                );
                continue;
            }
            let max_ok = view.max_consistent_containing_into(&members, max_buf);
            match (min_ok, max_ok) {
                (true, true) => {
                    if !min_buf.iter().zip(max_buf.iter()).all(|(lo, hi)| lo <= hi) {
                        let (lo, hi) = (
                            GlobalCheckpoint::new(min_buf.clone()),
                            GlobalCheckpoint::new(max_buf.clone()),
                        );
                        tally.note(
                            max_kept,
                            protocol,
                            "min-above-max",
                            schedule,
                            format!("{}: min {lo} > max {hi}", record.id),
                        );
                    }
                }
                (false, false) => {}
                _ => {
                    let (lo, hi) = (gc_of(min_ok, min_buf), gc_of(max_ok, max_buf));
                    tally.note(
                        max_kept,
                        protocol,
                        "min-max-existence-disagreement",
                        schedule,
                        format!("{}: min {lo:?}, max {hi:?}", record.id),
                    );
                }
            }
            if protocol.claims_rdt() && !min_ok {
                tally.note(
                    max_kept,
                    protocol,
                    "useless-checkpoint",
                    schedule,
                    format!("{} is on a Z-cycle", record.id),
                );
            }
            if protocol.check_reported_min_gc() {
                if let Some(reported) = &record.min_consistent_gc {
                    let matches = min_ok && min_buf.as_slice() == reported.as_slice();
                    if !matches {
                        tally.note(
                            max_kept,
                            protocol,
                            "tdv-min-gc-mismatch",
                            schedule,
                            format!(
                                "{}: saved TDV {:?}, oracle min {:?} (Corollary 4.5)",
                                record.id,
                                reported,
                                min_ok.then_some(&min_buf[..])
                            ),
                        );
                    }
                }
            }
        }
    });
}

/// Exhaustively certifies `options.protocols` over `scope`.
///
/// Layouts are the parallel work units, fanned out over the work-stealing
/// engine; per-layout tallies are merged in layout order, so the report
/// is identical for every thread count. Each worker keeps one
/// [`CertSession`] per protocol across all its layouts — the per-schedule
/// check results are pure functions of the schedule, so session reuse
/// changes nothing but the wall time.
pub fn certify(scope: &Scope, options: &CertifyOptions) -> CertifyReport {
    let threads = if options.threads == 0 {
        std::thread::available_parallelism().map_or(1, |p| p.get())
    } else {
        options.threads
    };
    let layouts = enumerate_layouts(scope);
    let perms = permutations(scope.processes);
    let protocols = &options.protocols;
    let max_kept = options.max_counterexamples;
    let compact_interval = options.compact_interval;
    let n = scope.processes;

    let per_layout = parallel_map_indexed(
        &layouts,
        threads,
        || -> (Vec<CertSession>, LayoutScratch) {
            let sessions = protocols.iter().map(|_| CertSession::new(n)).collect();
            (sessions, LayoutScratch::new(n))
        },
        |(sessions, scratch), _, layout| {
            let mut tallies = vec![ProtocolTally::default(); protocols.len()];
            let counts = visit_layout(layout, &perms, scratch, &mut |schedule| {
                for ((protocol, session), tally) in protocols
                    .iter()
                    .zip(sessions.iter_mut())
                    .zip(tallies.iter_mut())
                {
                    certify_schedule(protocol, session, schedule, tally, max_kept);
                    session.maybe_compact(compact_interval);
                }
            });
            (counts, tallies)
        },
        |_| {},
    );

    let mut counts = EnumerationCounts::default();
    let mut merged = vec![ProtocolTally::default(); protocols.len()];
    for (layout_counts, tallies) in per_layout {
        counts.absorb(&layout_counts);
        for (into, tally) in merged.iter_mut().zip(tallies) {
            into.absorb(tally, max_kept);
        }
    }

    let protocols = protocols
        .iter()
        .zip(merged)
        .map(|(protocol, tally)| ProtocolReport {
            name: protocol.name(),
            claims_rdt: protocol.claims_rdt(),
            expected_clean: protocol.expected_clean(),
            patterns: tally.patterns,
            rdt_violations: tally.rdt_violations,
            predicate_mismatches: tally.predicate_mismatches,
            gc_checks: tally.gc_checks,
            counterexample_total: tally.counterexample_total,
            counterexamples: tally.counterexamples,
        })
        .collect();

    CertifyReport {
        scope: *scope,
        counts,
        protocols,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(scope: Scope, threads: usize) -> CertifyReport {
        let options = CertifyOptions {
            threads,
            ..CertifyOptions::default()
        };
        certify(&scope, &options)
    }

    #[test]
    fn tiny_scope_certifies_cleanly() {
        let report = quick(Scope::tiny(), 1);
        for p in &report.protocols {
            assert_eq!(
                p.counterexample_total, 0,
                "{}: {:?}",
                p.name, p.counterexamples
            );
        }
        // n=2: the weakened control is exempt, so the verdict is clean.
        assert!(report.certified_ok(), "{}", report.render());
    }

    #[test]
    fn weakened_control_is_caught_at_three_processes() {
        let scope = Scope::with_basics(3, 2, 0).unwrap();
        let report = quick(scope, 2);
        let weak = report
            .protocol("bhmr-c2only")
            .expect("control in default set");
        assert!(weak.counterexample_total > 0, "{}", report.render());
        assert!(weak.rdt_violations > 0);
        assert!(weak
            .counterexamples
            .iter()
            .any(|cex| cex.kind == "rdt-violation"));
        let full = report.protocol("bhmr").expect("bhmr in default set");
        assert_eq!(full.counterexample_total, 0, "{:?}", full.counterexamples);
        assert!(report.certified_ok(), "{}", report.render());
    }

    #[test]
    fn non_claiming_protocols_violate_without_counterexamples() {
        let scope = Scope::with_basics(3, 2, 0).unwrap();
        let report = quick(scope, 2);
        let unco = report.protocol("uncoordinated").expect("in default set");
        assert!(unco.rdt_violations > 0, "{}", report.render());
        assert_eq!(unco.counterexample_total, 0);
    }

    #[test]
    fn report_is_identical_for_every_thread_count() {
        let scope = Scope::with_basics(3, 2, 1).unwrap();
        let options = CertifyOptions {
            threads: 1,
            protocols: vec![
                crate::CertProtocol::Kind(rdt_core::ProtocolKind::Bhmr),
                crate::CertProtocol::WeakenedBhmrC2Only,
            ],
            max_counterexamples: 4,
            compact_interval: 0,
        };
        let one = certify(&scope, &options).to_json().pretty();
        for threads in [2, 5, 8] {
            let many = certify(
                &scope,
                &CertifyOptions {
                    threads,
                    ..options.clone()
                },
            )
            .to_json()
            .pretty();
            assert_eq!(one, many, "threads={threads}");
        }
    }

    #[test]
    fn report_is_identical_under_compaction() {
        // Compacting between schedules trades prefix sharing for bounded
        // resident state; the report must stay byte-identical for every
        // interval and thread count.
        let scope = Scope::with_basics(3, 2, 1).unwrap();
        let baseline = quick(scope, 1).to_json().pretty();
        for interval in [1u64, 3] {
            for threads in [1usize, 2] {
                let options = CertifyOptions {
                    threads,
                    compact_interval: interval,
                    ..CertifyOptions::default()
                };
                let compacted = certify(&scope, &options).to_json().pretty();
                assert_eq!(baseline, compacted, "interval={interval} threads={threads}");
            }
        }
    }

    #[test]
    fn gc_oracles_run_on_protocol_checkpoints() {
        let report = quick(Scope::tiny(), 1);
        let fdi = report.protocol("fdi").expect("fdi in default set");
        assert!(fdi.gc_checks > 0);
    }
}
