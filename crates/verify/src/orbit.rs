//! Orbit-pruned, work-unit-streamed enumeration.
//!
//! The baseline enumerator ([`crate::enumerate`]) generates every layout,
//! expands every matching, and discards non-canonical skeletons *after*
//! building them — at scope (3,4) that is ~1M materialized layouts and
//! 260k encoded skeletons of which 86% are relabelings of one another.
//! This module moves the symmetry quotient inside the generator:
//!
//! * **Masked relabeling classification.** A layout fixes every slot
//!   kind and send destination; only delivery matchings are open. For a
//!   relabeling π, compare the π-relabeled slot stream against the
//!   identity stream word by word, treating a deliver-vs-deliver
//!   position as *unknown* (its payload depends on the matching) —
//!   every other position compares identically in the layout and in any
//!   completed skeleton. If the walk decides **less** before touching an
//!   unknown position, *every* skeleton of the layout is non-canonical:
//!   the whole layout (and, at interior line boundaries, the whole
//!   not-yet-generated subtree) is pruned. If it decides **greater**, π
//!   can never disqualify any skeleton of the layout and is dropped from
//!   the per-skeleton checks. Only relabelings still *undecided* at the
//!   first unknown position are carried into the per-skeleton streaming
//!   compare — at scope (3,4) that leaves fewer than one undecided
//!   relabeling per skeleton on average.
//! * **Orbit–stabilizer counting.** Pruned structures are never
//!   generated, so full-space tallies are recovered per canonical
//!   skeleton as `orbit = n! / |Stab|`, where the stabilizer is counted
//!   by the same streaming compare that proves canonicality
//!   ([`canonical_stab`]). Reported counts are identical to the
//!   baseline's — pinned by differential tests and the (3,4) regression.
//! * **Self-describing work units.** A [`WorkUnit`] is a send budget
//!   plus one complete first-process line: a few bytes that any worker
//!   can expand independently, in a deterministic order that reproduces
//!   the baseline's global schedule stream exactly (units are emitted in
//!   first-line DFS pre-order, the order the baseline recursion visits
//!   them). Consecutive units share long first-line prefixes, so the
//!   schedules a worker replays share long op prefixes — which is what
//!   the prefix-sharing replay sessions in [`crate::certify`] feed on.
//!
//! The independent-event commutation quotient is inherited from the
//! skeleton representation itself: schedules are canonical greedy
//! linearizations, so all interleavings that differ only by commuting
//! concurrent events collapse into one replayed schedule (see the
//! module docs of [`crate::enumerate`]).

use crate::enumerate::{
    build_skeleton, canonical_stab, linearize, permutations, skeleton_key, EnumerationCounts,
    LSlot, Layout, MatchScratch, Schedule, SendSlot,
};
use crate::Scope;

/// One self-describing unit of enumeration work: the scope-wide send
/// budget plus process 0's complete event line. Workers regrow lines
/// `1..n` and every matching behind it, so a unit stays a few bytes no
/// matter how large its subtree is.
#[derive(Debug, Clone)]
pub(crate) struct WorkUnit {
    /// Total sends of every layout in this unit's subtree.
    pub(crate) total_sends: usize,
    /// Process 0's complete line.
    pub(crate) line0: Vec<LSlot>,
}

/// Enumerates every work unit of the scope, in the exact order the
/// baseline enumerator visits the corresponding subtrees: ascending send
/// budget, then first-line DFS pre-order (a prefix is emitted before its
/// extensions). Expanding the units in order therefore reproduces the
/// baseline's schedule stream — and consecutive units share first-line
/// prefixes, which keeps replay-session prefix reuse high.
pub(crate) fn enumerate_units(scope: &Scope) -> Vec<WorkUnit> {
    let mut out = Vec::new();
    for total_sends in 0..=scope.messages {
        let mut line0 = Vec::new();
        grow_unit(
            scope.processes,
            total_sends,
            total_sends,
            total_sends,
            scope.basics,
            &mut line0,
            &mut out,
        );
    }
    out
}

fn grow_unit(
    n: usize,
    total_sends: usize,
    sends_left: usize,
    delivers_left: usize,
    basics_left: usize,
    line0: &mut Vec<LSlot>,
    out: &mut Vec<WorkUnit>,
) {
    out.push(WorkUnit {
        total_sends,
        line0: line0.clone(),
    });
    if basics_left > 0 {
        line0.push(LSlot::Basic);
        grow_unit(
            n,
            total_sends,
            sends_left,
            delivers_left,
            basics_left - 1,
            line0,
            out,
        );
        line0.pop();
    }
    if sends_left > 0 {
        for dest in 1..n {
            line0.push(LSlot::Send { dest });
            grow_unit(
                n,
                total_sends,
                sends_left - 1,
                delivers_left,
                basics_left,
                line0,
                out,
            );
            line0.pop();
        }
    }
    if delivers_left > 0 {
        line0.push(LSlot::Deliver);
        grow_unit(
            n,
            total_sends,
            sends_left,
            delivers_left - 1,
            basics_left,
            line0,
            out,
        );
        line0.pop();
    }
}

/// Per-orbit metadata handed to the schedule visitor.
#[derive(Debug, Clone, Copy)]
pub struct ScheduleMeta {
    /// Size of the structure's isomorphism orbit (`n! / |Stab|`): how
    /// many full-space structures this canonical representative covers.
    pub orbit: u64,
    /// Deterministic FNV-1a key of the canonical encoding (all zeros
    /// unless key computation was requested) — the stratified-sampling
    /// coordinate.
    pub key: u64,
}

/// Enumeration-side work tallies of the orbit-pruned engine (everything
/// here is deterministic; wall-clock lives elsewhere).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OrbitStats {
    /// Work units expanded.
    pub units: u64,
    /// Full layouts whose matchings were expanded.
    pub layouts: u64,
    /// Full layouts discarded whole by a masked relabeling compare.
    pub layouts_pruned: u64,
    /// Interior line-boundary prunes (each cuts an entire generation
    /// subtree before it is built).
    pub subtree_cuts: u64,
    /// Per-skeleton streaming relabeling compares actually run (the
    /// undecided residue the masked classification could not settle).
    pub perm_checks: u64,
}

impl OrbitStats {
    /// Accumulates `other` into `self`.
    pub fn absorb(&mut self, other: &OrbitStats) {
        self.units += other.units;
        self.layouts += other.layouts;
        self.layouts_pruned += other.layouts_pruned;
        self.subtree_cuts += other.subtree_cuts;
        self.perm_checks += other.perm_checks;
    }
}

/// Masked comparison outcome of one relabeled layout stream against the
/// identity stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MaskedOrd {
    /// Strictly smaller for every matching: prune.
    Less,
    /// Strictly greater for every matching: the relabeling can never
    /// disqualify a skeleton of this layout.
    Greater,
    /// Identical streams with no deliver slots involved (a layout
    /// automorphism; only possible on deliver-free layouts).
    Equal,
    /// Decision depends on the delivery matching.
    Undecided,
}

/// Kind word of a deliver slot; its matching-dependent payload occupies
/// the low 16 bits, so deliver-vs-non-deliver comparisons are decided by
/// the kind alone.
const DELIVER_KIND: u32 = 2 << 16;

/// The masked word of a layout slot under `perm`, or `None` for a
/// deliver (payload unknown until a matching is chosen).
#[inline]
fn masked_word(slot: LSlot, perm: &[usize]) -> Option<u32> {
    match slot {
        LSlot::Basic => Some(0),
        LSlot::Send { dest } => Some((1 << 16) | ((perm[dest] as u32) << 8)),
        LSlot::Deliver => None,
    }
}

/// Shared, read-only state of the orbit-pruned enumerator: the
/// permutation tables of the scope. Build once, share across workers.
pub(crate) struct OrbitContext {
    n: usize,
    factorial: u64,
    /// All permutations of `0..n`, sorted, identity first.
    perms: Vec<Vec<usize>>,
    /// `inverses[k][new] = old` for `perms[k]`.
    inverses: Vec<Vec<usize>>,
    /// `region_perms[r]` = indices of non-identity permutations that fix
    /// every process `>= r` (i.e. the embedded `S_r`), for the boundary
    /// check after line `r - 1` completes.
    region_perms: Vec<Vec<usize>>,
    /// Whether to compute per-orbit sampling keys.
    with_keys: bool,
}

impl OrbitContext {
    pub(crate) fn new(scope: &Scope, with_keys: bool) -> Self {
        let n = scope.processes;
        let perms = permutations(n);
        let inverses: Vec<Vec<usize>> = perms
            .iter()
            .map(|perm| {
                let mut inv = vec![0; n];
                for (old, &new) in perm.iter().enumerate() {
                    inv[new] = old;
                }
                inv
            })
            .collect();
        let region_perms: Vec<Vec<usize>> = (0..=n)
            .map(|r| {
                perms
                    .iter()
                    .enumerate()
                    .skip(1) // identity sorts first
                    .filter(|(_, perm)| (r..n).all(|j| perm[j] == j))
                    .map(|(idx, _)| idx)
                    .collect()
            })
            .collect();
        OrbitContext {
            n,
            factorial: (1..=n as u64).product(),
            perms,
            inverses,
            region_perms,
            with_keys,
        }
    }

    /// Expands one work unit: regrows lines `1..n` with masked-relabeling
    /// subtree pruning at every line boundary, expands matchings of each
    /// surviving layout, proves canonicality over the undecided residue,
    /// counts orbits, and hands every canonical realizable schedule (with
    /// its orbit size and sampling key) to `emit` — in the baseline
    /// enumerator's order.
    pub(crate) fn run_unit(
        &self,
        unit: &WorkUnit,
        scratch: &mut OrbitScratch,
        counts: &mut EnumerationCounts,
        stats: &mut OrbitStats,
        emit: &mut dyn FnMut(&Schedule, ScheduleMeta),
    ) {
        stats.units += 1;
        for line in &mut scratch.lines {
            line.clear();
        }
        scratch.lines[0].extend_from_slice(&unit.line0);
        let mut sends0 = 0;
        let mut delivers0 = 0;
        let mut basics0 = 0;
        for slot in &unit.line0 {
            match slot {
                LSlot::Basic => basics0 += 1,
                LSlot::Send { .. } => sends0 += 1,
                LSlot::Deliver => delivers0 += 1,
            }
        }
        self.boundary_and_descend(
            0,
            unit.total_sends - sends0,
            unit.total_sends - delivers0,
            scratch.basics_budget - basics0,
            scratch,
            counts,
            stats,
            emit,
        );
    }

    /// Line `i` just completed: run the boundary checks over lines
    /// `0..=i` and, if the subtree survives, move on to line `i + 1` (or
    /// matching expansion once every line is placed).
    #[allow(clippy::too_many_arguments)] // recursive hot path, all state is live
    fn boundary_and_descend(
        &self,
        i: usize,
        sends_left: usize,
        delivers_left: usize,
        basics_left: usize,
        scratch: &mut OrbitScratch,
        counts: &mut EnumerationCounts,
        stats: &mut OrbitStats,
        emit: &mut dyn FnMut(&Schedule, ScheduleMeta),
    ) {
        let region = i + 1;
        if region == self.n && sends_left != 0 {
            // The budget must be spent by the last line (each budget is
            // a separate unit stream) — not a layout.
            return;
        }
        // Feasibility: every delivery already placed on a completed line
        // needs a matching send — placed, or still in the budget.
        let mut deficit = 0usize;
        for j in 0..self.n {
            let wanted = scratch.lines[j]
                .iter()
                .filter(|s| **s == LSlot::Deliver)
                .count();
            let incoming = scratch
                .lines
                .iter()
                .flatten()
                .filter(|s| matches!(s, LSlot::Send { dest } if *dest == j))
                .count();
            deficit += wanted.saturating_sub(incoming);
        }
        if deficit > sends_left {
            return;
        }
        if region == self.n {
            // Final boundary: full classification. `Less` prunes the
            // layout; `Greater` relabelings are dropped; the undecided
            // residue (plus deliver-free automorphisms) goes to the
            // per-skeleton check.
            scratch.undecided.clear();
            for &idx in &self.region_perms[region] {
                match self.masked_cmp(&scratch.lines, idx, region) {
                    MaskedOrd::Less => {
                        stats.layouts_pruned += 1;
                        return;
                    }
                    MaskedOrd::Greater => {}
                    MaskedOrd::Equal | MaskedOrd::Undecided => scratch.undecided.push(idx),
                }
            }
            self.complete_layout(scratch, counts, stats, emit);
            return;
        }
        for &idx in &self.region_perms[region] {
            if self.masked_cmp(&scratch.lines, idx, region) == MaskedOrd::Less {
                stats.subtree_cuts += 1;
                return;
            }
        }
        self.descend(
            region,
            sends_left,
            delivers_left,
            basics_left,
            scratch,
            counts,
            stats,
            emit,
        );
    }

    /// Grows line `i` slot by slot, in the baseline enumerator's order:
    /// end the line here first, then extend by a basic, a send to each
    /// destination, a delivery.
    #[allow(clippy::too_many_arguments)] // recursive hot path, all state is live
    fn descend(
        &self,
        i: usize,
        sends_left: usize,
        delivers_left: usize,
        basics_left: usize,
        scratch: &mut OrbitScratch,
        counts: &mut EnumerationCounts,
        stats: &mut OrbitStats,
        emit: &mut dyn FnMut(&Schedule, ScheduleMeta),
    ) {
        // End line i here. The send budget must be exhausted by the last
        // line (each budget is enumerated separately), so a short-circuit
        // spares the boundary walk when it cannot be.
        if i + 1 < self.n || sends_left == 0 {
            self.boundary_and_descend(
                i,
                sends_left,
                delivers_left,
                basics_left,
                scratch,
                counts,
                stats,
                emit,
            );
        }
        if basics_left > 0 {
            scratch.lines[i].push(LSlot::Basic);
            self.descend(
                i,
                sends_left,
                delivers_left,
                basics_left - 1,
                scratch,
                counts,
                stats,
                emit,
            );
            scratch.lines[i].pop();
        }
        if sends_left > 0 {
            for dest in 0..self.n {
                if dest == i {
                    continue;
                }
                scratch.lines[i].push(LSlot::Send { dest });
                self.descend(
                    i,
                    sends_left - 1,
                    delivers_left,
                    basics_left,
                    scratch,
                    counts,
                    stats,
                    emit,
                );
                scratch.lines[i].pop();
            }
        }
        if delivers_left > 0 {
            scratch.lines[i].push(LSlot::Deliver);
            self.descend(
                i,
                sends_left,
                delivers_left - 1,
                basics_left,
                scratch,
                counts,
                stats,
                emit,
            );
            scratch.lines[i].pop();
        }
    }

    /// Masked streaming compare of relabeling `idx` against the identity
    /// over lines `0..region` (both streams are the same multiset of
    /// slots, so they exhaust together). A decision reached here holds
    /// for every extension of the remaining lines and every matching.
    fn masked_cmp(&self, lines: &[Vec<LSlot>], idx: usize, region: usize) -> MaskedOrd {
        let perm = &self.perms[idx];
        let inv = &self.inverses[idx];
        let (mut a_line, mut a_slot) = (0usize, 0usize);
        let (mut b_line, mut b_slot) = (0usize, 0usize);
        while a_line < region && b_line < region {
            let relabeled = &lines[inv[a_line]];
            let wa = if a_slot < relabeled.len() {
                masked_word(relabeled[a_slot], perm)
            } else {
                Some(u32::MAX) // line separator
            };
            let original = &lines[b_line];
            let wb = if b_slot < original.len() {
                masked_word(original[b_slot], &self.perms[0])
            } else {
                Some(u32::MAX)
            };
            match (wa, wb) {
                (None, None) => return MaskedOrd::Undecided,
                (None, Some(word)) => {
                    // A deliver's word is `DELIVER_KIND | payload` with
                    // payload < 1 << 16, so the kind decides against any
                    // non-deliver word.
                    return if DELIVER_KIND < word {
                        MaskedOrd::Less
                    } else {
                        MaskedOrd::Greater
                    };
                }
                (Some(word), None) => {
                    return if word < DELIVER_KIND {
                        MaskedOrd::Less
                    } else {
                        MaskedOrd::Greater
                    };
                }
                (Some(wa), Some(wb)) => match wa.cmp(&wb) {
                    std::cmp::Ordering::Less => return MaskedOrd::Less,
                    std::cmp::Ordering::Greater => return MaskedOrd::Greater,
                    std::cmp::Ordering::Equal => {}
                },
            }
            if a_slot < relabeled.len() {
                a_slot += 1;
            } else {
                a_line += 1;
                a_slot = 0;
            }
            if b_slot < original.len() {
                b_slot += 1;
            } else {
                b_line += 1;
                b_slot = 0;
            }
        }
        MaskedOrd::Equal
    }

    /// Expands every matching of the completed layout in
    /// `scratch.lines`, proving canonicality over the undecided residue
    /// and counting orbits.
    fn complete_layout(
        &self,
        scratch: &mut OrbitScratch,
        counts: &mut EnumerationCounts,
        stats: &mut OrbitStats,
        emit: &mut dyn FnMut(&Schedule, ScheduleMeta),
    ) {
        stats.layouts += 1;
        let OrbitScratch {
            lines,
            layout,
            undecided,
            sends,
            delivers,
            used,
            chosen,
            matching,
            ..
        } = scratch;
        layout.n = self.n;
        for (into, line) in layout.lines.iter_mut().zip(lines.iter()) {
            into.clear();
            into.extend_from_slice(line);
        }
        sends.clear();
        delivers.clear();
        for (i, line) in layout.lines.iter().enumerate() {
            let mut ord = 0;
            for slot in line {
                match *slot {
                    LSlot::Send { dest } => {
                        sends.push(SendSlot {
                            process: i,
                            dest,
                            ord,
                        });
                        ord += 1;
                    }
                    LSlot::Deliver => delivers.push(i),
                    LSlot::Basic => {}
                }
            }
        }
        used.clear();
        used.resize(sends.len(), false);
        chosen.clear();
        chosen.resize(delivers.len(), usize::MAX);
        self.match_delivers(
            0, layout, sends, delivers, used, chosen, undecided, matching, counts, stats, emit,
        );
    }

    #[allow(clippy::too_many_arguments)] // recursive worker, all state is hot
    fn match_delivers(
        &self,
        k: usize,
        layout: &Layout,
        sends: &[SendSlot],
        delivers: &[usize],
        used: &mut Vec<bool>,
        chosen: &mut Vec<usize>,
        undecided: &[usize],
        matching: &mut MatchScratch,
        counts: &mut EnumerationCounts,
        stats: &mut OrbitStats,
        emit: &mut dyn FnMut(&Schedule, ScheduleMeta),
    ) {
        if k == delivers.len() {
            build_skeleton(layout, sends, chosen, &mut matching.skeleton);
            stats.perm_checks += undecided.len() as u64;
            let Some(stab) = canonical_stab(matching, &self.perms, undecided) else {
                // An undecided relabeling encodes smaller: this skeleton
                // is a plain orbit member, already covered by the count
                // at its canonical representative.
                return;
            };
            let orbit = self.factorial / stab;
            counts.structures += orbit;
            counts.canonical += 1;
            counts.pruned_symmetry += orbit - 1;
            if linearize(matching) {
                counts.replayable += 1;
                let key = if self.with_keys {
                    skeleton_key(matching)
                } else {
                    0
                };
                emit(&matching.schedule, ScheduleMeta { orbit, key });
            } else {
                counts.unrealizable += 1;
            }
            return;
        }
        for (si, send) in sends.iter().enumerate() {
            if used[si] || send.dest != delivers[k] {
                continue;
            }
            used[si] = true;
            chosen[k] = si;
            self.match_delivers(
                k + 1,
                layout,
                sends,
                delivers,
                used,
                chosen,
                undecided,
                matching,
                counts,
                stats,
                emit,
            );
            used[si] = false;
        }
    }
}

/// Reusable per-worker buffers of the orbit-pruned enumerator; one
/// instance per worker, reused across every unit it steals, so the
/// per-structure hot path allocates nothing.
pub(crate) struct OrbitScratch {
    /// The layout under construction, line 0 loaded from the unit.
    lines: Vec<Vec<LSlot>>,
    /// Completed-layout copy handed to the matcher.
    layout: Layout,
    /// Relabeling indices the masked classification left undecided.
    undecided: Vec<usize>,
    sends: Vec<SendSlot>,
    delivers: Vec<usize>,
    used: Vec<bool>,
    chosen: Vec<usize>,
    matching: MatchScratch,
    /// The scope's basic-checkpoint budget (threaded through the unit
    /// expansion without re-deriving it per call).
    basics_budget: usize,
}

impl OrbitScratch {
    pub(crate) fn new(scope: &Scope) -> Self {
        let n = scope.processes;
        OrbitScratch {
            lines: vec![Vec::new(); n],
            layout: Layout {
                n,
                lines: vec![Vec::new(); n],
            },
            undecided: Vec::new(),
            sends: Vec::new(),
            delivers: Vec::new(),
            used: Vec::new(),
            chosen: Vec::new(),
            matching: MatchScratch::new(n),
            basics_budget: scope.basics,
        }
    }
}

/// Runs the orbit-pruned enumeration serially, handing every canonical
/// realizable schedule to `emit`. Counts and schedule stream are
/// identical to [`crate::enumerate_schedules`] — held to it by
/// differential tests — at a fraction of the generation work; this is
/// the enumeration the certifier's orbit engine distributes.
pub fn enumerate_schedules_orbit(
    scope: &Scope,
    mut emit: impl FnMut(&Schedule),
) -> EnumerationCounts {
    enumerate_schedules_orbit_stats(scope, |schedule, _| emit(schedule)).0
}

/// [`enumerate_schedules_orbit`] with per-orbit metadata and the
/// enumeration work tallies.
pub fn enumerate_schedules_orbit_stats(
    scope: &Scope,
    mut emit: impl FnMut(&Schedule, ScheduleMeta),
) -> (EnumerationCounts, OrbitStats) {
    let ctx = OrbitContext::new(scope, true);
    let mut scratch = OrbitScratch::new(scope);
    let mut counts = EnumerationCounts::default();
    let mut stats = OrbitStats::default();
    for unit in &enumerate_units(scope) {
        ctx.run_unit(unit, &mut scratch, &mut counts, &mut stats, &mut emit);
    }
    (counts, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::{encode_slot, enumerate_schedules, Slot};

    /// The canonical (identity) word of a fully matched slot, exposing
    /// the kind/payload packing the masked compare relies on.
    fn identity_word(slot: Slot, n: usize) -> u32 {
        let identity: Vec<usize> = (0..n).collect();
        encode_slot(slot, &identity)
    }

    fn orbit_counts(n: usize, m: usize, b: usize) -> EnumerationCounts {
        let scope = Scope::with_basics(n, m, b).unwrap();
        enumerate_schedules_orbit(&scope, |_| {})
    }

    /// The masked packing invariant the classifier leans on: a deliver's
    /// payload never crosses the kind boundary.
    #[test]
    fn deliver_words_stay_within_their_kind() {
        for (src, ord) in [(0, 0), (3, 15), (1, 7)] {
            let word = identity_word(Slot::Deliver { src, ord }, 4);
            assert!((DELIVER_KIND..DELIVER_KIND + (1 << 16)).contains(&word));
        }
        assert!(identity_word(Slot::Send { dest: 3 }, 4) < DELIVER_KIND);
        assert_eq!(identity_word(Slot::Basic, 4), 0);
    }

    /// Hand counts from the baseline enumerator's test table must be
    /// reproduced exactly by orbit–stabilizer counting.
    #[test]
    fn hand_counts_are_reproduced() {
        for (n, m, b, structures, canonical, unrealizable) in [
            (1, 2, 2, 3, 3, 0),
            (2, 1, 0, 5, 3, 0),
            (2, 2, 0, 24, 14, 1),
            (2, 0, 2, 6, 4, 0),
        ] {
            let c = orbit_counts(n, m, b);
            assert_eq!(c.structures, structures, "{n},{m},{b}");
            assert_eq!(c.canonical, canonical, "{n},{m},{b}");
            assert_eq!(c.unrealizable, unrealizable, "{n},{m},{b}");
            assert_eq!(c.pruned_symmetry, structures - canonical, "{n},{m},{b}");
        }
    }

    /// Differential against the baseline enumerator: identical counts
    /// AND an identical schedule stream, in order — the property the
    /// certifier's byte-identical report rests on.
    #[test]
    fn matches_baseline_stream_and_counts() {
        for (n, m, b) in [(1, 0, 2), (2, 2, 1), (3, 2, 1), (3, 3, 0), (4, 2, 1)] {
            let scope = Scope::with_basics(n, m, b).unwrap();
            let mut baseline = Vec::new();
            let base_counts = enumerate_schedules(&scope, |s| baseline.push(s.render()));
            let mut orbit = Vec::new();
            let orbit_counts = enumerate_schedules_orbit(&scope, |s| orbit.push(s.render()));
            assert_eq!(base_counts, orbit_counts, "{n},{m},{b}");
            assert_eq!(baseline, orbit, "{n},{m},{b}");
        }
    }

    /// Orbit sizes sum to the full structure count, and every orbit
    /// divides `n!`.
    #[test]
    fn orbit_sizes_sum_to_structures() {
        let scope = Scope::with_basics(3, 2, 1).unwrap();
        let mut replayed_orbit_sum = 0u64;
        let factorial = 6u64;
        let (counts, stats) = enumerate_schedules_orbit_stats(&scope, |_, meta| {
            assert!(meta.orbit >= 1 && factorial.is_multiple_of(meta.orbit));
            replayed_orbit_sum += meta.orbit;
        });
        // Replayed orbits cover every realizable structure of the space;
        // unrealizable orbits make up the rest.
        assert!(replayed_orbit_sum <= counts.structures);
        assert!(counts.structures > counts.canonical);
        assert!(stats.layouts_pruned + stats.subtree_cuts > 0);
        assert!(stats.units > 0);
    }

    /// Sampling keys are deterministic and spread: re-enumeration yields
    /// the same key per schedule, and keys differ across orbits.
    #[test]
    fn sampling_keys_are_stable_and_distinct() {
        let scope = Scope::with_basics(3, 2, 0).unwrap();
        let mut first = Vec::new();
        enumerate_schedules_orbit_stats(&scope, |_, meta| first.push(meta.key));
        let mut second = Vec::new();
        enumerate_schedules_orbit_stats(&scope, |_, meta| second.push(meta.key));
        assert_eq!(first, second);
        let mut sorted = first.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), first.len(), "orbit keys must be distinct");
    }

    /// Work units are self-describing and ordered: ascending send
    /// budget, DFS pre-order on the first line (every prefix precedes
    /// its extensions).
    #[test]
    fn units_are_ordered_prefix_first() {
        let scope = Scope::with_basics(3, 2, 1).unwrap();
        let units = enumerate_units(&scope);
        assert!(units.len() > 10);
        for pair in units.windows(2) {
            assert!(pair[0].total_sends <= pair[1].total_sends);
            if pair[0].total_sends == pair[1].total_sends
                && pair[1].line0.len() > pair[0].line0.len()
            {
                // An extension directly follows one of its prefixes only
                // if the shorter line is a prefix of the longer.
                let k = pair[0].line0.len();
                if pair[1].line0.len() == k + 1 {
                    assert_eq!(&pair[1].line0[..k], &pair[0].line0[..]);
                }
            }
        }
    }
}
