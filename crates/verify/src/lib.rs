//! Exhaustive small-scope certifier for the CIC protocol suite.
//!
//! The "small-scope hypothesis" workhorse of this workspace: within a
//! bounded [`Scope`] (processes, messages, basic checkpoints), *every*
//! checkpoint-and-communication pattern is enumerated — every send/
//! delivery/in-transit combination, every interleaving, modulo process
//! relabeling — and every online protocol is replayed over every pattern.
//! The replayed outcomes are then checked against the offline theory of
//! `rdt-rgraph`: RDT characterizations, predicate conformance, and the
//! min/max consistent global-checkpoint oracles (Corollary 4.5).
//!
//! A protocol bug that manifests on any pattern within the scope is
//! found; the deliberately weakened [`Bhmr`](rdt_core::Bhmr) control
//! (`C2` without `C1`) proves the finder works. See
//! `docs/VERIFICATION.md` for the method, scope bounds, and count
//! tables.
//!
//! ```rust
//! use rdt_verify::{certify, CertifyOptions, Scope};
//!
//! let report = certify(&Scope::tiny(), &CertifyOptions::default());
//! assert!(report.certified_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod certify;
mod enumerate;
mod orbit;
mod replay;
mod scope;

pub use certify::{
    certify, certify_with_stats, CertifyEngine, CertifyOptions, CertifyReport, CertifyStats,
    Counterexample, ProtocolReport,
};
pub use enumerate::{
    enumerate_patterns, enumerate_schedules, DriverEvent, EnumerationCounts, Schedule,
};
pub use orbit::{
    enumerate_schedules_orbit, enumerate_schedules_orbit_stats, OrbitStats, ScheduleMeta,
};
pub use replay::{
    build_pattern, replay_protocol, replay_protocol_ops, CertProtocol, PatternOp,
    PredicateMismatch, ReplayedOps, ReplayedRun,
};
pub use scope::Scope;
