//! Scope bounds of the exhaustive enumeration.

use std::fmt;
use std::str::FromStr;

/// Upper bounds of the enumerated pattern space.
///
/// The certifier visits **every** checkpoint-and-communication pattern
/// with at most `processes` processes (exactly `processes`, smaller
/// systems being covered by smaller scopes), at most `messages` sends (in
/// every combination of delivered / in-transit), at most `basics` basic
/// checkpoints, and *all* delivery interleavings. Parsed from the CLI as
/// `n,m` or `n,m,b` (`b` defaults to [`Scope::DEFAULT_BASICS`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scope {
    /// Number of processes (`1..=4`; the symmetry-pruning canonicalizer
    /// enumerates all `n!` relabelings, so this stays small by design).
    pub processes: usize,
    /// Maximum number of messages sent (`<= 5`).
    pub messages: usize,
    /// Maximum number of basic checkpoints across all processes (`<= 4`).
    pub basics: usize,
}

impl Scope {
    /// Default basic-checkpoint budget when the third component is
    /// omitted: one basic checkpoint is enough to exercise every forcing
    /// predicate (`C2` needs an intermediate checkpoint on a chain), while
    /// keeping `--scope 3,4` in the seconds range.
    pub const DEFAULT_BASICS: usize = 1;

    /// A scope with the default basic-checkpoint budget.
    ///
    /// # Errors
    ///
    /// Returns a message if a bound is out of the supported range.
    pub fn new(processes: usize, messages: usize) -> Result<Scope, String> {
        Scope::with_basics(processes, messages, Scope::DEFAULT_BASICS)
    }

    /// A fully explicit scope.
    ///
    /// # Errors
    ///
    /// Returns a message if a bound is out of the supported range.
    pub fn with_basics(processes: usize, messages: usize, basics: usize) -> Result<Scope, String> {
        if !(1..=4).contains(&processes) {
            return Err(format!("scope: processes must be 1..=4, got {processes}"));
        }
        if messages > 5 {
            return Err(format!("scope: messages must be <= 5, got {messages}"));
        }
        if basics > 4 {
            return Err(format!("scope: basics must be <= 4, got {basics}"));
        }
        Ok(Scope {
            processes,
            messages,
            basics,
        })
    }

    /// The tiny scope CI's `verify-smoke` job runs: n=2, m=2, b=1.
    pub fn tiny() -> Scope {
        Scope {
            processes: 2,
            messages: 2,
            basics: 1,
        }
    }
}

impl fmt::Display for Scope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{},{},{}", self.processes, self.messages, self.basics)
    }
}

impl FromStr for Scope {
    type Err = String;

    fn from_str(s: &str) -> Result<Scope, String> {
        let parts: Vec<&str> = s.split(',').map(str::trim).collect();
        let parse = |part: &str, what: &str| -> Result<usize, String> {
            part.parse()
                .map_err(|_| format!("scope: invalid {what} {part:?} in {s:?}"))
        };
        match parts.as_slice() {
            [n, m] => Scope::new(parse(n, "process count")?, parse(m, "message count")?),
            [n, m, b] => Scope::with_basics(
                parse(n, "process count")?,
                parse(m, "message count")?,
                parse(b, "basic-checkpoint count")?,
            ),
            _ => Err(format!("scope: expected \"n,m\" or \"n,m,b\", got {s:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_two_and_three_component_forms() {
        let s: Scope = "3,4".parse().unwrap();
        assert_eq!(s.processes, 3);
        assert_eq!(s.messages, 4);
        assert_eq!(s.basics, Scope::DEFAULT_BASICS);
        let s: Scope = "2, 3, 2".parse().unwrap();
        assert_eq!((s.processes, s.messages, s.basics), (2, 3, 2));
    }

    #[test]
    fn rejects_out_of_range_and_malformed() {
        assert!("5,1".parse::<Scope>().is_err());
        assert!("0,1".parse::<Scope>().is_err());
        assert!("2,6".parse::<Scope>().is_err());
        assert!("2,2,5".parse::<Scope>().is_err());
        assert!("2".parse::<Scope>().is_err());
        assert!("a,b".parse::<Scope>().is_err());
    }

    #[test]
    fn display_round_trips() {
        let s = Scope::tiny();
        assert_eq!(s.to_string().parse::<Scope>().unwrap(), s);
    }
}
