//! Exhaustive bounded exploration: verify a protocol over **every**
//! schedule of a small universe, not just sampled ones.
//!
//! Random simulation (the `rdt-sim` runner) and property-based tests cover
//! long runs probabilistically; this module complements them with a
//! bounded model checker: for `n` processes and at most `depth` events, it
//! enumerates *every* interleaving of basic checkpoints, sends and
//! deliveries (deliveries in every possible order, channels non-FIFO, as
//! the paper's model allows), runs the protocol on each, and checks every
//! terminal pattern against the offline [`RdtChecker`].
//!
//! Theorem 4.4 claims *all* patterns a protocol produces satisfy RDT; for
//! the universe that fits in a test budget, this module proves it
//! exhaustively.
//!
//! For certification at larger scopes, prefer the [`rdt_verify`] crate
//! (`rdt::verify`, `rdt-cli certify`): it enumerates at the *skeleton*
//! level with symmetry pruning — orders of magnitude fewer replays for
//! the same coverage — and adds predicate and global-checkpoint oracles
//! for every shipped protocol (see `docs/VERIFICATION.md`). This module
//! remains the minimal, self-contained reference implementation.
//!
//! # Example
//!
//! ```rust
//! use rdt::explore::explore_protocol;
//! use rdt::{Bhmr, Uncoordinated};
//!
//! // Every schedule of 2 processes and up to 5 events: BHMR never
//! // violates RDT; the uncoordinated control does.
//! let bhmr = explore_protocol(2, 5, Bhmr::new);
//! assert_eq!(bhmr.violations, 0);
//! let unco = explore_protocol(2, 5, Uncoordinated::new);
//! assert!(unco.violations > 0);
//! ```

use rdt_causality::ProcessId;
use rdt_core::CicProtocol;
use rdt_rgraph::{PatternBuilder, PatternMessageId, RdtChecker, ZigzagReachability};

/// Outcome of one exhaustive exploration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Exploration {
    /// Complete schedules (leaves of the exploration tree) examined.
    pub schedules: u64,
    /// Leaves whose closed pattern violated RDT.
    pub violations: u64,
    /// Leaves whose closed pattern contained a useless checkpoint
    /// (Z-cycle).
    pub useless: u64,
    /// Total forced checkpoints over all schedules (a coarse
    /// conservativeness measure for comparing protocols over identical
    /// universes).
    pub total_forced: u64,
}

struct Explorer<P: CicProtocol + Clone> {
    n: usize,
    depth: usize,
    result: Exploration,
    _marker: std::marker::PhantomData<fn() -> P>,
}

#[derive(Clone)]
struct State<P: CicProtocol + Clone> {
    protocols: Vec<P>,
    builder: PatternBuilder,
    /// In-flight messages: `(dest, pattern-message, piggyback)`.
    in_flight: Vec<(ProcessId, PatternMessageId, PiggybackOf<P>, ProcessId)>,
    events_used: usize,
    forced: u64,
}

type PiggybackOf<P> = <P as CicProtocol>::Piggyback;

impl<P: CicProtocol + Clone> Explorer<P> {
    fn leaf(&mut self, state: &State<P>) {
        self.result.schedules += 1;
        self.result.total_forced += state.forced;
        let pattern = state
            .builder
            .build()
            .expect("explorer builds valid patterns");
        let report = RdtChecker::new(&pattern).check();
        if !report.holds() {
            self.result.violations += 1;
        }
        let closed = pattern.to_closed();
        let zz = ZigzagReachability::new(&closed);
        if closed.checkpoints().any(|c| zz.on_z_cycle(c)) {
            self.result.useless += 1;
        }
    }

    fn visit(&mut self, state: State<P>) {
        self.leaf(&state);
        if state.events_used >= self.depth {
            return;
        }

        // Branch 1: any process takes a basic checkpoint.
        for i in 0..self.n {
            let mut next = state.clone();
            next.protocols[i].take_basic_checkpoint();
            next.builder.checkpoint(ProcessId::new(i));
            next.events_used += 1;
            self.visit(next);
        }

        // Branch 2: any ordered pair exchanges a new message (send only;
        // its delivery is a separate later event).
        for from in 0..self.n {
            for to in 0..self.n {
                if from == to {
                    continue;
                }
                let mut next = state.clone();
                let outcome = next.protocols[from].before_send(ProcessId::new(to));
                debug_assert!(
                    outcome.forced_after.is_none(),
                    "explorer does not model checkpoint-after-send protocols"
                );
                let message = next.builder.send(ProcessId::new(from), ProcessId::new(to));
                next.in_flight.push((
                    ProcessId::new(to),
                    message,
                    outcome.piggyback,
                    ProcessId::new(from),
                ));
                next.events_used += 1;
                self.visit(next);
            }
        }

        // Branch 3: any in-flight message is delivered (any order).
        for idx in 0..state.in_flight.len() {
            let mut next = state.clone();
            let (to, message, piggyback, sender) = next.in_flight.remove(idx);
            let outcome = next.protocols[to.index()].on_message_arrival(sender, &piggyback);
            if outcome.was_forced() {
                next.builder.checkpoint(to);
                next.forced += 1;
            }
            next.builder
                .deliver(message)
                .expect("in-flight messages are deliverable");
            next.events_used += 1;
            self.visit(next);
        }
    }
}

/// Exhaustively explores every schedule of `n` processes with up to
/// `depth` events (each checkpoint, send or delivery counts as one
/// event), running a fresh protocol system down every branch, and checks
/// every reached pattern (closed) for RDT and for useless checkpoints.
///
/// The exploration tree has roughly `(2n(n-1) + n)^depth` nodes; keep
/// `n ≤ 3` and `depth ≤ 6` in tests.
///
/// # Panics
///
/// Panics (in debug builds) if the protocol takes checkpoints *after*
/// sends (the checkpoint-after-send family); all arrival-driven protocols
/// are supported.
pub fn explore_protocol<P, F>(n: usize, depth: usize, factory: F) -> Exploration
where
    P: CicProtocol + Clone,
    F: Fn(usize, ProcessId) -> P,
{
    let initial = State {
        protocols: ProcessId::all(n).map(|p| factory(n, p)).collect(),
        builder: PatternBuilder::new(n),
        in_flight: Vec::new(),
        events_used: 0,
        forced: 0,
    };
    let mut explorer = Explorer::<P> {
        n,
        depth,
        result: Exploration {
            schedules: 0,
            violations: 0,
            useless: 0,
            total_forced: 0,
        },
        _marker: std::marker::PhantomData,
    };
    explorer.visit(initial);
    explorer.result
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdt_core::{Bcs, Bhmr, BhmrCausalOnly, BhmrNoSimple, Fdas, Fdi, Nras, Uncoordinated};

    #[test]
    fn exhaustive_rdt_two_processes() {
        // Every schedule of 2 processes, up to 6 events.
        for (name, result) in [
            ("bhmr", explore_protocol(2, 6, Bhmr::new)),
            ("bhmr-nosimple", explore_protocol(2, 6, BhmrNoSimple::new)),
            (
                "bhmr-causalonly",
                explore_protocol(2, 6, BhmrCausalOnly::new),
            ),
            ("fdas", explore_protocol(2, 6, Fdas::new)),
            ("fdi", explore_protocol(2, 6, Fdi::new)),
            ("nras", explore_protocol(2, 6, Nras::new)),
        ] {
            assert!(result.schedules > 10_000, "{name}: universe too small");
            assert_eq!(result.violations, 0, "{name} violated RDT somewhere");
            assert_eq!(result.useless, 0, "{name} produced a useless checkpoint");
        }
    }

    #[test]
    fn exhaustive_rdt_three_processes_shallow() {
        for (name, result) in [
            ("bhmr", explore_protocol(3, 4, Bhmr::new)),
            ("fdas", explore_protocol(3, 4, Fdas::new)),
        ] {
            assert!(result.schedules > 10_000, "{name}: universe too small");
            assert_eq!(result.violations, 0, "{name} violated RDT somewhere");
        }
    }

    #[test]
    fn uncoordinated_violations_are_found() {
        let result = explore_protocol(2, 6, Uncoordinated::new);
        assert!(result.violations > 0);
        assert_eq!(result.total_forced, 0);
    }

    #[test]
    fn bcs_is_zcf_but_not_rdt_exhaustively() {
        // With two processes BCS happens to preserve RDT (same-process
        // chains always cross an epoch bump and get broken); the C1-style
        // hidden dependency needs a third process.
        let two = explore_protocol(2, 6, Bcs::new);
        assert_eq!(two.useless, 0, "BCS produced a useless checkpoint");
        assert_eq!(two.violations, 0, "two-process BCS universe is RDT-clean");
        let three = explore_protocol(3, 4, Bcs::new);
        assert_eq!(three.useless, 0, "BCS produced a useless checkpoint");
        assert!(
            three.violations > 0,
            "the ZCF/RDT separation must appear with n=3"
        );
    }

    #[test]
    fn exhaustive_lattice_of_conservativeness() {
        // Over the *identical* exhaustive universe, total forced
        // checkpoints order along the predicate lattice (here divergence
        // is no objection: every schedule of the universe is explored for
        // both protocols).
        let bhmr = explore_protocol(2, 5, Bhmr::new).total_forced;
        let nosimple = explore_protocol(2, 5, BhmrNoSimple::new).total_forced;
        let fdas = explore_protocol(2, 5, Fdas::new).total_forced;
        let fdi = explore_protocol(2, 5, Fdi::new).total_forced;
        let nras = explore_protocol(2, 5, Nras::new).total_forced;
        assert!(bhmr <= nosimple, "bhmr {bhmr} > nosimple {nosimple}");
        assert!(nosimple <= fdas, "nosimple {nosimple} > fdas {fdas}");
        assert!(fdas <= fdi, "fdas {fdas} > fdi {fdi}");
        assert!(fdas <= nras, "fdas {fdas} > nras {nras}");
    }
}
