//! **rdt** — communication-induced checkpointing with
//! Rollback-Dependency Trackability, reproduced from Baldoni, Hélary,
//! Mostefaoui & Raynal (and the PODC 1999 companion *"Rollback-Dependency
//! Trackability: Visible Characterizations"*).
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`causality`] | `rdt-causality` | ids, vector clocks, dependency vectors, bit-packed booleans |
//! | [`protocols`] | `rdt-core` | the BHMR protocol, its variants, FDAS/FDI/CBR/CAS/NRAS |
//! | [`theory`] | `rdt-rgraph` | patterns, R-graphs, zigzag paths, RDT checking, min/max consistent global checkpoints |
//! | [`sim`] | `rdt-sim` | deterministic discrete-event simulator |
//! | [`workloads`] | `rdt-workloads` | the evaluation's environments |
//! | [`recovery`] | `rdt-recovery` | recovery lines, domino effect, GC, output commit |
//! | [`explore`] | (this crate) | exhaustive bounded model checking of the protocols |
//!
//! The most common items are re-exported at the root. The `rdt-cli` binary
//! (`cargo run --bin rdt-cli -- list`) exposes runs, comparisons, audits
//! and trace replays on the command line.
//!
//! # Quickstart
//!
//! Run the paper's protocol in a random environment, then *prove* the run
//! satisfies RDT:
//!
//! ```rust
//! use rdt::{
//!     run_protocol_kind, ProtocolKind, RdtChecker, SimConfig, StopCondition,
//! };
//! use rdt::workloads::RandomEnvironment;
//!
//! let config = SimConfig::new(4).with_seed(7).with_stop(StopCondition::MessagesSent(200));
//! let outcome = run_protocol_kind(ProtocolKind::Bhmr, &config, &mut RandomEnvironment::new(20));
//!
//! let pattern = outcome.trace.to_pattern();
//! assert!(RdtChecker::new(&pattern).check().holds());
//! println!(
//!     "forced/basic = {}/{}",
//!     outcome.stats.total.forced_checkpoints,
//!     outcome.stats.total.basic_checkpoints,
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod explore;

pub use rdt_causality as causality;
pub use rdt_core as protocols;
pub use rdt_json as json;
pub use rdt_lint as lint;
pub use rdt_recovery as recovery;
pub use rdt_rgraph as theory;
pub use rdt_sim as sim;
pub use rdt_verify as verify;
pub use rdt_workloads as workloads;

pub use rdt_causality::{
    BoolMatrix, BoolVector, CheckpointId, DependencyVector, IntervalId, ProcessId, VectorClock,
};
pub use rdt_core::{
    ArrivalOutcome, Bcs, Bhmr, BhmrCausalOnly, BhmrNoSimple, Cas, Cbr, CheckpointKind,
    CheckpointRecord, CicProtocol, Fdas, Fdi, Nras, PiggybackSize, ProtocolKind, ProtocolStats,
    SendOutcome, Uncoordinated,
};
pub use rdt_recovery::{analyze, domino_pattern, recovery_line, Failure, RollbackReport};
pub use rdt_rgraph::{
    GlobalCheckpoint, Pattern, PatternAnalysis, PatternBuilder, RGraph, RdtChecker, RdtReport,
    Reachability, Replay, ZigzagReachability,
};
pub use rdt_sim::{
    run_protocol_kind, Application, RunOutcome, RunStats, Runner, SimConfig, SimRng, SimTime,
    StopCondition, Stopwatch, Trace, TraceMetrics,
};
pub use rdt_verify::{
    certify, certify_with_stats, CertProtocol, CertifyEngine, CertifyOptions, CertifyReport,
    CertifyStats, Scope,
};
pub use rdt_workloads::{
    ChandyLamport, ClientServerEnvironment, EnvironmentKind, GroupEnvironment, GroupLayout,
    KooToueg, PipelineEnvironment, RandomEnvironment, RingEnvironment,
};
