//! `rdt-cli` — run checkpointing simulations and theory audits from the
//! command line.
//!
//! ```text
//! rdt-cli list
//! rdt-cli run --protocol bhmr --env client-server --n 8 --seed 3 \
//!             --messages 2000 --ckpt-mean 80 [--fifo] [--verify] [--stats] [--detail] \
//!             [--crash-rate R [--max-crashes K] [--compact]] [--dot pattern.dot]
//! rdt-cli compare --env random --n 8 --seed 3 --messages 2000
//! rdt-cli audit --figure 1
//! rdt-cli domino --rounds 10
//! rdt-cli certify --scope 3,4 [--threads N] [--sample FRAC] [--progress]
//!         [--json results/certify_report.json]
//! rdt-cli lint
//! rdt-cli serve [--listen ADDR | --unix PATH] [--workers N] [--snapshot PATH]
//! rdt-cli connect [--addr ADDR | --unix PATH]
//! ```

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::process::ExitCode;

use rdt::theory::{dot, min_max, paper_figures};
use rdt::workloads::EnvironmentKind;
use rdt::{
    analyze, domino_pattern, run_protocol_kind, Failure, ProcessId, ProtocolKind, RdtChecker,
    SimConfig, StopCondition,
};

fn parse_flags(args: &[String]) -> (HashMap<String, String>, Vec<String>) {
    let mut flags = HashMap::new();
    let mut positional = Vec::new();
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        if let Some(name) = arg.strip_prefix("--") {
            let value = match iter.peek() {
                Some(next) if !next.starts_with("--") => iter.next().unwrap().clone(),
                _ => "true".to_string(),
            };
            flags.insert(name.to_string(), value);
        } else {
            positional.push(arg.clone());
        }
    }
    (flags, positional)
}

fn get<T: std::str::FromStr>(flags: &HashMap<String, String>, key: &str, default: T) -> T {
    flags
        .get(key)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn build_config(flags: &HashMap<String, String>, n: usize) -> SimConfig {
    let basics = match get(flags, "ckpt-mean", 80u64) {
        // Lets self-checkpointing workloads (e.g. domino) run without the
        // timer instead of panicking on a zero exponential mean.
        0 => rdt::sim::BasicCheckpointModel::Disabled,
        mean => rdt::sim::BasicCheckpointModel::Exponential { mean },
    };
    SimConfig::new(n)
        .with_seed(get(flags, "seed", 1u64))
        .with_basic_checkpoints(basics)
        .with_stop(StopCondition::MessagesSent(get(
            flags, "messages", 1_000u64,
        )))
        .with_fifo(flags.contains_key("fifo"))
        .with_crash_rate(get(flags, "crash-rate", 0.0f64))
        .with_max_crashes(get(flags, "max-crashes", 2u32))
        .with_compaction(flags.contains_key("compact"))
}

fn cmd_list() -> ExitCode {
    println!("protocols:");
    for &kind in ProtocolKind::all() {
        println!(
            "  {:<16} rdt={:<5} zcf={:<5} piggyback(n=8)={}B",
            kind.name(),
            kind.ensures_rdt(),
            kind.ensures_z_cycle_freedom(),
            kind.piggyback_bytes(8)
        );
    }
    println!("environments:");
    for &env in EnvironmentKind::all() {
        println!("  {}", env.name());
    }
    ExitCode::SUCCESS
}

fn cmd_run(flags: &HashMap<String, String>) -> ExitCode {
    let protocol: ProtocolKind = match get::<String>(flags, "protocol", "bhmr".into()).parse() {
        Ok(p) => p,
        Err(err) => {
            eprintln!("{err}");
            return ExitCode::FAILURE;
        }
    };
    let env: EnvironmentKind = match get::<String>(flags, "env", "random".into()).parse() {
        Ok(e) => e,
        Err(err) => {
            eprintln!("{err}");
            return ExitCode::FAILURE;
        }
    };
    let n = get(flags, "n", 8usize);
    // `--stats` rides the online probe: the incremental engine shadows the
    // run so append and query cost can be reported separately.
    let config = build_config(flags, n).with_online_rdt_probe(flags.contains_key("stats"));
    let mut app = env.build(n, get(flags, "send-mean", 20u64));
    let outcome = run_protocol_kind(protocol, &config, app.as_mut());

    let stats = &outcome.stats.total;
    println!(
        "protocol {} in {} (n={n}, seed {}):",
        protocol.name(),
        env.name(),
        config.seed
    );
    println!(
        "  messages     : {} sent, {} delivered",
        stats.messages_sent, stats.messages_delivered
    );
    println!(
        "  checkpoints  : {} basic + {} forced (R = {:.4})",
        stats.basic_checkpoints,
        stats.forced_checkpoints,
        stats.forced_ratio()
    );
    println!(
        "  piggyback    : {:.1} bytes/message",
        stats.mean_piggyback_bytes()
    );
    println!("  sim end time : {}", outcome.stats.end_time);

    if let Some(recovery) = &outcome.recovery {
        println!(
            "  crashes      : {} injected, {} deliveries undone, {} orphans discarded, {} lost \
             messages replayed",
            recovery.crashes.len(),
            recovery.total_deliveries_undone(),
            recovery.total_orphans_discarded(),
            recovery.total_lost_replayed()
        );
        println!(
            "  rollback     : max depth {} ckpts, max domino span {} of {n} processes, {} \
             rolled to initial, mean span {:.1} ticks",
            recovery.max_rollback_depth(),
            recovery.max_domino_span(),
            recovery.total_rolled_to_initial(),
            recovery.mean_rollback_span_ticks()
        );
        if config.compact_after_recovery {
            match recovery.resident_nodes_after_compaction {
                Some(resident) => println!(
                    "  compaction   : {} recovery-line compactions reclaimed {} closure rows, \
                     {resident} resident nodes after the last",
                    recovery.compactions, recovery.reclaimed_rows
                ),
                None => println!("  compaction   : no compaction discarded state"),
            }
        }
        if flags.contains_key("stats") {
            println!(
                "    line compute : {:>7.3} ms (incremental engine, all crashes)",
                recovery.line_compute_time.as_secs_f64() * 1e3
            );
            for (k, crash) in recovery.crashes.iter().enumerate() {
                println!(
                    "    crash #{k} at {}: P{} down, line {:?}, depth {}, span {}",
                    crash.at,
                    crash.process.index(),
                    crash.line,
                    crash.max_depth(),
                    crash.domino_span
                );
            }
        }
    }

    if flags.contains_key("detail") {
        let metrics = rdt::sim::TraceMetrics::of(&outcome.trace);
        print!("{}", metrics.render());
    }
    if flags.contains_key("verify") {
        let report = RdtChecker::new(&outcome.trace.to_pattern()).check();
        println!(
            "  RDT          : {} ({} R-paths checked)",
            if report.holds() { "holds" } else { "VIOLATED" },
            report.r_paths_found()
        );
        for violation in report.violations().iter().take(3) {
            println!("    {violation}");
        }
    }
    if flags.contains_key("stats") {
        if let Some(probe) = &outcome.online_rdt {
            println!(
                "  online probe ({} events appended during the run):",
                probe.events_appended
            );
            println!(
                "    append     : {:>9.3} ms (incremental engine updates)",
                probe.append_time.as_secs_f64() * 1e3
            );
            let verdict = match probe.first_violation_event {
                Some(event) => format!(
                    "{} untrackable pairs, first after event {event}",
                    probe.untrackable_pairs
                ),
                None => "no untrackable pair at any step".to_string(),
            };
            println!(
                "    query      : {:>9.3} ms ({verdict})",
                probe.query_time.as_secs_f64() * 1e3
            );
        }
        // One shared PatternAnalysis; its laziness splits the offline
        // check into its phases so each can be timed in isolation.
        let pattern = outcome.trace.to_pattern();
        let analysis = rdt::PatternAnalysis::new(&pattern);

        let watch = rdt::Stopwatch::start();
        let replay_ok = analysis.annotations().is_ok();
        let replay = watch.elapsed();

        let watch = rdt::Stopwatch::start();
        analysis.reachability();
        analysis.zigzag();
        let closure = watch.elapsed();

        println!("  phase timings (one shared analysis):");
        println!("    replay     : {:>9.3} ms", replay.as_secs_f64() * 1e3);
        println!(
            "    closure    : {:>9.3} ms (R-graph + chain closures)",
            closure.as_secs_f64() * 1e3
        );
        if replay_ok {
            let watch = rdt::Stopwatch::start();
            let report = analysis.rdt_report();
            let scan = watch.elapsed();
            println!(
                "    pair scan  : {:>9.3} ms ({} reachable pairs, RDT {})",
                scan.as_secs_f64() * 1e3,
                report.pairs_checked(),
                if report.holds() { "holds" } else { "VIOLATED" }
            );
        } else {
            println!("    pair scan  : skipped (pattern unrealizable)");
        }
    }
    if let Some(path) = flags.get("dot") {
        let text = dot::pattern_to_dot(&outcome.trace.to_pattern());
        if let Err(err) = std::fs::write(path, text) {
            eprintln!("could not write {path}: {err}");
            return ExitCode::FAILURE;
        }
        println!("  pattern DOT  : {path}");
    }
    if let Some(path) = flags.get("save-trace") {
        let json = rdt::json::ToJson::to_json(&outcome.trace).to_string();
        if let Err(err) = std::fs::write(path, json) {
            eprintln!("could not write {path}: {err}");
            return ExitCode::FAILURE;
        }
        println!("  trace JSON   : {path}");
    }
    ExitCode::SUCCESS
}

fn cmd_replay(flags: &HashMap<String, String>) -> ExitCode {
    let Some(path) = flags.get("trace") else {
        eprintln!("usage: rdt-cli replay --trace <file.json> [--dot out.dot]");
        return ExitCode::FAILURE;
    };
    let json = match std::fs::read_to_string(path) {
        Ok(json) => json,
        Err(err) => {
            eprintln!("could not read {path}: {err}");
            return ExitCode::FAILURE;
        }
    };
    let trace: rdt::Trace = match rdt::Trace::from_json_str(&json) {
        Ok(trace) => trace,
        Err(err) => {
            eprintln!("could not parse {path}: {err}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "replaying trace: {} processes, {} events, {} checkpoints",
        trace.num_processes(),
        trace.events().len(),
        trace.checkpoint_count()
    );
    let metrics = rdt::sim::TraceMetrics::of(&trace);
    print!("{}", metrics.render());
    let pattern = trace.to_pattern();
    let report = RdtChecker::new(&pattern).check();
    println!("RDT: {}", if report.holds() { "holds" } else { "violated" });
    for violation in report.violations().iter().take(5) {
        println!("  {violation}");
    }
    if let Some(out) = flags.get("dot") {
        if std::fs::write(out, dot::pattern_to_dot(&pattern)).is_ok() {
            println!("pattern DOT: {out}");
        }
    }
    ExitCode::SUCCESS
}

fn cmd_compare(flags: &HashMap<String, String>) -> ExitCode {
    let env: EnvironmentKind = match get::<String>(flags, "env", "random".into()).parse() {
        Ok(e) => e,
        Err(err) => {
            eprintln!("{err}");
            return ExitCode::FAILURE;
        }
    };
    let n = get(flags, "n", 8usize);
    let config = build_config(flags, n);
    println!(
        "{:>16} {:>10} {:>10} {:>8} {:>14}",
        "protocol", "forced", "basic", "R", "piggyback B/m"
    );
    for &protocol in ProtocolKind::all() {
        let mut app = env.build(n, get(flags, "send-mean", 20u64));
        let outcome = run_protocol_kind(protocol, &config, app.as_mut());
        let stats = &outcome.stats.total;
        println!(
            "{:>16} {:>10} {:>10} {:>8.4} {:>14.1}",
            protocol.name(),
            stats.forced_checkpoints,
            stats.basic_checkpoints,
            stats.forced_ratio(),
            stats.mean_piggyback_bytes()
        );
    }
    ExitCode::SUCCESS
}

fn cmd_audit(flags: &HashMap<String, String>) -> ExitCode {
    let figure = get::<String>(flags, "figure", "1".into());
    let pattern = match figure.as_str() {
        "1" => paper_figures::figure_1(),
        "2" => paper_figures::figure_2_unbroken(),
        "2b" => paper_figures::figure_2_broken(),
        "4" => paper_figures::figure_4_unbroken(),
        "4b" => paper_figures::figure_4_broken(),
        other => {
            eprintln!("unknown figure {other:?}; expected 1, 2, 2b, 4 or 4b");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "figure {figure}: {} processes, {} messages, {} checkpoints",
        pattern.num_processes(),
        pattern.num_messages(),
        pattern.total_checkpoints()
    );
    let report = RdtChecker::new(&pattern).check();
    println!("RDT: {}", if report.holds() { "holds" } else { "violated" });
    for violation in report.violations() {
        println!("  {violation}");
    }
    for c in pattern.checkpoints() {
        if let Some(gc) = min_max::min_consistent_containing(&pattern, &[c]) {
            println!("  min GC containing {c}: {gc}");
        } else {
            println!("  {c} is USELESS (belongs to no consistent GC)");
        }
    }
    ExitCode::SUCCESS
}

fn cmd_domino(flags: &HashMap<String, String>) -> ExitCode {
    let rounds = get(flags, "rounds", 10usize);
    let pattern = domino_pattern(rounds);
    println!("domino pattern, {rounds} rounds:");
    for cap in (0..rounds as u32).rev().take(3) {
        let report = analyze(
            &pattern,
            &[Failure {
                process: ProcessId::new(0),
                resume_cap: cap,
            }],
        );
        println!(
            "  P0 resumes from index {cap}: line {}, {} checkpoints discarded",
            report.line, report.total_discarded
        );
    }
    ExitCode::SUCCESS
}

fn cmd_certify(flags: &HashMap<String, String>) -> ExitCode {
    let scope: rdt::Scope = match get::<String>(flags, "scope", "3,4".into()).parse() {
        Ok(scope) => scope,
        Err(err) => {
            eprintln!("{err}");
            return ExitCode::FAILURE;
        }
    };
    let sample = flags.get("sample").and_then(|v| v.parse::<f64>().ok());
    let options = rdt::CertifyOptions {
        threads: get(flags, "threads", 0usize),
        sample,
        // Progress/ETA lines go to stderr; suppressed in --json mode so
        // scripted runs stay quiet.
        progress: get(flags, "progress", false) && !flags.contains_key("json"),
        ..rdt::CertifyOptions::default()
    };
    let watch = rdt::Stopwatch::start();
    let report = rdt::certify(&scope, &options);
    let elapsed = watch.elapsed();
    print!("{}", report.render());
    eprintln!("certified in {:.2}s", elapsed.as_secs_f64());
    if let Some(path) = flags.get("json") {
        let text = rdt::json::ToJson::to_json(&report).pretty();
        if let Err(err) = std::fs::write(path, text) {
            eprintln!("could not write {path}: {err}");
            return ExitCode::FAILURE;
        }
        println!("  report JSON  : {path}");
    }
    if report.certified_ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn cmd_lint() -> ExitCode {
    let root = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    match rdt::lint::run_lint(&root) {
        Ok(report) => {
            print!("{}", report.render());
            if report.clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}

/// `rdt-cli serve`: run the streaming daemon inline. Thin wrapper over
/// [`rdt_serve::Server`]; the `rdt-serve` binary is the same daemon with
/// its own argument parser.
fn cmd_serve(flags: &HashMap<String, String>) -> ExitCode {
    let endpoint = match (flags.get("listen"), flags.get("unix")) {
        (Some(_), Some(_)) => {
            eprintln!("--listen and --unix are exclusive");
            return ExitCode::FAILURE;
        }
        (None, Some(path)) => rdt_serve::Endpoint::Unix(path.into()),
        (listen, None) => rdt_serve::Endpoint::Tcp(
            listen
                .cloned()
                .unwrap_or_else(|| "127.0.0.1:7878".to_string()),
        ),
    };
    let config = rdt_serve::ServerConfig {
        endpoint,
        workers: get(flags, "workers", 4usize).max(1),
        snapshot_path: flags.get("snapshot").map(Into::into),
    };
    let server = match rdt_serve::Server::bind(config) {
        Ok(server) => server,
        Err(err) => {
            eprintln!("serve: {err}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "serving ({} streams restored); send {{\"op\":\"shutdown\"}} to stop",
        server.restored_streams()
    );
    match server.run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("serve: {err}");
            ExitCode::FAILURE
        }
    }
}

/// `rdt-cli connect`: pipe stdin lines to a running daemon and print its
/// replies, one per line.
fn cmd_connect(flags: &HashMap<String, String>) -> ExitCode {
    let halves: std::io::Result<(Box<dyn Write>, Box<dyn Read>)> =
        if let Some(path) = flags.get("unix") {
            std::os::unix::net::UnixStream::connect(path).and_then(|s| {
                let r = s.try_clone()?;
                Ok((Box::new(s) as Box<dyn Write>, Box::new(r) as Box<dyn Read>))
            })
        } else {
            let addr = flags
                .get("addr")
                .cloned()
                .unwrap_or_else(|| "127.0.0.1:7878".to_string());
            std::net::TcpStream::connect(addr).and_then(|s| {
                let r = s.try_clone()?;
                Ok((Box::new(s) as Box<dyn Write>, Box::new(r) as Box<dyn Read>))
            })
        };
    let (mut writer, read_half) = match halves {
        Ok(halves) => halves,
        Err(err) => {
            eprintln!("connect: {err}");
            return ExitCode::FAILURE;
        }
    };
    let mut replies = BufReader::new(read_half);
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(line) => line,
            Err(err) => {
                eprintln!("connect: reading stdin: {err}");
                return ExitCode::FAILURE;
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        if writer
            .write_all(format!("{line}\n").as_bytes())
            .and_then(|()| writer.flush())
            .is_err()
        {
            eprintln!("connect: daemon closed the connection");
            return ExitCode::FAILURE;
        }
        let mut reply = String::new();
        match replies.read_line(&mut reply) {
            Ok(0) | Err(_) => {
                eprintln!("connect: daemon closed the connection");
                return ExitCode::FAILURE;
            }
            Ok(_) => print!("{reply}"),
        }
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (flags, positional) = parse_flags(&args);
    match positional.first().map(String::as_str) {
        Some("list") => cmd_list(),
        Some("run") => cmd_run(&flags),
        Some("compare") => cmd_compare(&flags),
        Some("audit") => cmd_audit(&flags),
        Some("domino") => cmd_domino(&flags),
        Some("replay") => cmd_replay(&flags),
        Some("certify") => cmd_certify(&flags),
        Some("lint") => cmd_lint(),
        Some("serve") => cmd_serve(&flags),
        Some("connect") => cmd_connect(&flags),
        _ => {
            eprintln!(
                "usage: rdt-cli <list|run|compare|audit|domino|replay|certify|lint|serve|connect> [--flags]\n\
                 see the module docs (`cargo doc`) for the full flag list"
            );
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn flags_and_positionals_are_separated() {
        let (flags, positional) = parse_flags(&strings(&[
            "run",
            "--protocol",
            "bhmr",
            "--verify",
            "--n",
            "8",
        ]));
        assert_eq!(positional, vec!["run"]);
        assert_eq!(flags.get("protocol").map(String::as_str), Some("bhmr"));
        assert_eq!(flags.get("verify").map(String::as_str), Some("true"));
        assert_eq!(flags.get("n").map(String::as_str), Some("8"));
    }

    #[test]
    fn trailing_boolean_flag() {
        let (flags, _) = parse_flags(&strings(&["run", "--fifo"]));
        assert_eq!(flags.get("fifo").map(String::as_str), Some("true"));
    }

    #[test]
    fn get_falls_back_to_default() {
        let (flags, _) = parse_flags(&strings(&["run", "--seed", "junk"]));
        assert_eq!(get(&flags, "seed", 7u64), 7, "unparsable values fall back");
        assert_eq!(get(&flags, "missing", 9u64), 9);
        let (flags, _) = parse_flags(&strings(&["run", "--seed", "12"]));
        assert_eq!(get(&flags, "seed", 7u64), 12);
    }

    #[test]
    fn config_builder_uses_flags() {
        let (flags, _) = parse_flags(&strings(&[
            "run",
            "--seed",
            "5",
            "--messages",
            "42",
            "--ckpt-mean",
            "99",
            "--fifo",
            "--compact",
        ]));
        let config = build_config(&flags, 3);
        assert_eq!(config.seed, 5);
        assert_eq!(config.stop, rdt::StopCondition::MessagesSent(42));
        assert!(config.fifo);
        assert!(config.compact_after_recovery);
        assert!(!build_config(&HashMap::new(), 3).compact_after_recovery);
    }
}
