//! Overlapping group communication (Figure 8's environment): sweep the
//! basic-checkpoint interval and watch `R = forced/basic` per protocol.
//!
//! ```text
//! cargo run --example group_comm
//! ```

use rdt::workloads::{GroupEnvironment, GroupLayout};
use rdt::{run_protocol_kind, ProtocolKind, SimConfig, StopCondition};

fn main() {
    let n = 12;
    let layout = GroupLayout::overlapping(n, 4, 1);
    println!(
        "{n} processes in {} overlapping groups of 4 (overlap 1)\n",
        layout.num_groups()
    );

    let protocols = [
        ProtocolKind::Bhmr,
        ProtocolKind::Fdas,
        ProtocolKind::Fdi,
        ProtocolKind::Nras,
    ];
    print!("{:>24}", "ckpt interval (ticks)");
    for p in protocols {
        print!("{:>12}", p.name());
    }
    println!();

    for multiplier in [1u64, 2, 4, 8, 16] {
        let ckpt_mean = multiplier * 20;
        print!("{ckpt_mean:>24}");
        for protocol in protocols {
            let mut forced = 0u64;
            let mut basic = 0u64;
            for seed in 1..=3u64 {
                let config = SimConfig::new(n)
                    .with_seed(seed)
                    .with_basic_checkpoints(rdt::sim::BasicCheckpointModel::Exponential {
                        mean: ckpt_mean,
                    })
                    .with_stop(StopCondition::MessagesSent(1_000));
                let mut app = GroupEnvironment::new(GroupLayout::overlapping(n, 4, 1), 20);
                let outcome = run_protocol_kind(protocol, &config, &mut app);
                forced += outcome.stats.total.forced_checkpoints;
                basic += outcome.stats.total.basic_checkpoints;
            }
            let r = if basic > 0 {
                forced as f64 / basic as f64
            } else {
                0.0
            };
            print!("{r:>12.3}");
        }
        println!();
    }

    println!(
        "\nOverlap members relay causal knowledge between groups; the BHMR causal\n\
         matrix uses it to certify siblings that FDAS cannot see (paper Figure 8)."
    );
}
