//! Coordinated checkpointing (Chandy–Lamport and Koo–Toueg) versus
//! communication-induced checkpointing, over the same workload.
//!
//! The paper's introduction (§1) frames CIC as the coordination-free
//! alternative: no control messages, no blocking, no FIFO assumption —
//! paid for with piggybacks and forced checkpoints. This example puts all
//! three coordination styles side by side.
//!
//! ```text
//! cargo run --example coordinated_snapshots
//! ```

use rdt::workloads::RandomEnvironment;
use rdt::{
    run_protocol_kind, ChandyLamport, KooToueg, ProtocolKind, SimConfig, SimTime, StopCondition,
};

fn base_config(n: usize) -> SimConfig {
    SimConfig::new(n)
        .with_seed(33)
        .with_basic_checkpoints(rdt::sim::BasicCheckpointModel::Disabled)
        .with_stop(StopCondition::Time(SimTime::from_ticks(20_000)))
}

fn main() {
    let n = 6;
    let interval = 1_000;
    println!(
        "{n} processes, random workload, checkpoint wave / basic timer every {interval} ticks\n"
    );
    println!(
        "{:>16} {:>12} {:>14} {:>16} {:>14} {:>6}",
        "scheme", "checkpoints", "control msgs", "piggyback bytes", "blocked ticks", "FIFO?"
    );

    // Chandy-Lamport (needs FIFO).
    {
        let config = base_config(n).with_fifo(true);
        let mut app = ChandyLamport::new(RandomEnvironment::new(25), interval);
        let outcome = run_protocol_kind(ProtocolKind::Uncoordinated, &config, &mut app);
        println!(
            "{:>16} {:>12} {:>14} {:>16} {:>14} {:>6}",
            "chandy-lamport",
            outcome.stats.total.total_checkpoints(),
            app.markers_sent(),
            0,
            0,
            "yes"
        );
    }

    // Koo-Toueg (blocking, no FIFO needed).
    {
        let config = base_config(n);
        let mut app = KooToueg::new(RandomEnvironment::new(25), interval);
        let outcome = run_protocol_kind(ProtocolKind::Uncoordinated, &config, &mut app);
        println!(
            "{:>16} {:>12} {:>14} {:>16} {:>14} {:>6}",
            "koo-toueg",
            outcome.stats.total.total_checkpoints(),
            app.control_messages(),
            0,
            app.blocked_ticks(),
            "no"
        );
    }

    // CIC protocols with basic timers at the matched per-process rate.
    for protocol in [ProtocolKind::Bhmr, ProtocolKind::Fdas, ProtocolKind::Bcs] {
        let config = base_config(n)
            .with_basic_checkpoints(rdt::sim::BasicCheckpointModel::Exponential { mean: interval });
        let mut app = RandomEnvironment::new(25);
        let outcome = run_protocol_kind(protocol, &config, &mut app);
        println!(
            "{:>16} {:>12} {:>14} {:>16} {:>14} {:>6}",
            protocol.name(),
            outcome.stats.total.total_checkpoints(),
            0,
            outcome.stats.total.piggyback_bytes_sent,
            0,
            "no"
        );
    }

    println!(
        "\nCoordinated schemes guarantee that every wave is a consistent cut; CIC\n\
         protocols guarantee (RDT) that every checkpoint sits in a consistent\n\
         global checkpoint computable from its piggybacked dependency vector —\n\
         without markers, acks, blocking, or channel assumptions."
    );
}
