//! Quickstart: run the BHMR protocol under a random workload, inspect the
//! statistics, and *prove* the resulting pattern satisfies RDT.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use rdt::workloads::RandomEnvironment;
use rdt::{run_protocol_kind, ProtocolKind, RdtChecker, SimConfig, StopCondition};

fn main() {
    // 8 processes, everything derived from one seed.
    let config = SimConfig::new(8)
        .with_seed(2026)
        .with_basic_checkpoints(rdt::sim::BasicCheckpointModel::Exponential { mean: 80 })
        .with_stop(StopCondition::MessagesSent(2_000));

    println!("running BHMR over a random 8-process workload...");
    let outcome = run_protocol_kind(ProtocolKind::Bhmr, &config, &mut RandomEnvironment::new(20));

    let stats = &outcome.stats.total;
    println!(
        "  messages sent/delivered : {}/{}",
        stats.messages_sent, stats.messages_delivered
    );
    println!("  basic checkpoints       : {}", stats.basic_checkpoints);
    println!("  forced checkpoints      : {}", stats.forced_checkpoints);
    println!("  R = forced/basic        : {:.4}", stats.forced_ratio());
    println!(
        "  piggyback bytes/message : {:.1}",
        stats.mean_piggyback_bytes()
    );

    // Every checkpoint record carries, on the fly, the minimum consistent
    // global checkpoint containing it (Corollary 4.5).
    if let Some(record) = outcome.records.iter().flatten().last() {
        println!(
            "  last checkpoint {} -> minimum consistent GC {:?}",
            record.id,
            record
                .min_consistent_gc
                .as_ref()
                .expect("BHMR tracks dependencies")
        );
    }

    // Offline verification: all rollback dependencies of this run are
    // trackable (Theorem 4.4).
    let pattern = outcome.trace.to_pattern();
    let report = RdtChecker::new(&pattern).check();
    println!(
        "  RDT verified offline    : {} ({} R-paths checked)",
        if report.holds() { "yes" } else { "NO (bug!)" },
        report.r_paths_found()
    );
    assert!(report.holds());
}
