//! Rollback-recovery: the domino effect with uncoordinated checkpoints,
//! and how an RDT protocol bounds the damage.
//!
//! ```text
//! cargo run --example recovery_demo
//! ```

use rdt::workloads::RandomEnvironment;
use rdt::{
    analyze, domino_pattern, run_protocol_kind, Failure, ProcessId, ProtocolKind, SimConfig,
    StopCondition,
};

fn main() {
    // Part 1: the textbook domino effect (Randell's staggered ping-pong).
    println!("=== part 1: the domino effect ===");
    let pattern = domino_pattern(10);
    println!(
        "two processes, {} checkpoints in total, staggered so that only the initial",
        pattern.total_checkpoints()
    );
    println!("and the final global checkpoints are consistent.\n");
    let report = analyze(
        &pattern,
        &[Failure {
            process: ProcessId::new(0),
            resume_cap: 9,
        }], // newest checkpoint lost
    );
    println!("P0 loses its newest checkpoint and must resume from index 9:");
    println!("  recovery line        : {}", report.line);
    println!(
        "  checkpoints discarded: {:?}",
        report.discarded_per_process
    );
    println!(
        "  rolled to initial    : {} of 2 processes",
        report.rolled_to_initial
    );
    assert_eq!(report.line.as_slice(), &[0, 0], "full collapse");

    // Part 2: the same question on protocol-generated patterns.
    println!("\n=== part 2: RDT bounds rollback ===");
    for protocol in [
        ProtocolKind::Bhmr,
        ProtocolKind::Fdas,
        ProtocolKind::Uncoordinated,
    ] {
        let config = SimConfig::new(6)
            .with_seed(7)
            .with_basic_checkpoints(rdt::sim::BasicCheckpointModel::Exponential { mean: 60 })
            .with_stop(StopCondition::MessagesSent(1_500));
        let outcome = run_protocol_kind(protocol, &config, &mut RandomEnvironment::new(20));
        let pattern = outcome.trace.to_pattern().to_closed();

        let mut total_discarded = 0;
        let mut to_initial = 0;
        for i in 0..6 {
            let process = ProcessId::new(i);
            let cap = pattern.last_checkpoint_index(process).saturating_sub(1);
            let report = analyze(
                &pattern,
                &[Failure {
                    process,
                    resume_cap: cap,
                }],
            );
            total_discarded += report.total_discarded;
            to_initial += report.rolled_to_initial;
        }
        println!(
            "  {:>14}: {:>4} checkpoints discarded across 6 single-failure scenarios, {} cascades to initial",
            protocol.name(),
            total_discarded,
            to_initial
        );
    }
    println!("\n(The uncoordinated run pays more rollback for the checkpoints it saved.)");
}
