//! The client/server environment of the evaluation (Figure 9): compare
//! the whole protocol lattice on identical request/reply workloads and
//! show where the BHMR family beats FDAS.
//!
//! ```text
//! cargo run --example client_server
//! ```

use rdt::workloads::ClientServerEnvironment;
use rdt::{run_protocol_kind, ProtocolKind, SimConfig, StopCondition};

fn main() {
    let n = 8; // client + 7 chained servers
    let seeds: Vec<u64> = (1..=5).collect();

    println!(
        "client/server chain, n={n}, {} seeds, 2000 messages each\n",
        seeds.len()
    );
    println!(
        "{:>16} {:>10} {:>10} {:>8} {:>14}",
        "protocol", "forced", "basic", "R", "piggyback B/m"
    );

    let mut fdas_forced = 0u64;
    let mut results = Vec::new();
    for &protocol in ProtocolKind::all() {
        let mut forced = 0u64;
        let mut basic = 0u64;
        let mut piggyback = 0.0;
        for &seed in &seeds {
            let config = SimConfig::new(n)
                .with_seed(seed)
                .with_basic_checkpoints(rdt::sim::BasicCheckpointModel::Exponential { mean: 80 })
                .with_stop(StopCondition::MessagesSent(2_000));
            let outcome =
                run_protocol_kind(protocol, &config, &mut ClientServerEnvironment::new(20));
            forced += outcome.stats.total.forced_checkpoints;
            basic += outcome.stats.total.basic_checkpoints;
            piggyback += outcome.stats.total.mean_piggyback_bytes();
        }
        if protocol == ProtocolKind::Fdas {
            fdas_forced = forced;
        }
        results.push((protocol, forced, basic, piggyback / seeds.len() as f64));
    }

    for (protocol, forced, basic, piggyback) in results {
        let r = if basic > 0 {
            forced as f64 / basic as f64
        } else {
            0.0
        };
        print!(
            "{:>16} {forced:>10} {basic:>10} {r:>8.4} {piggyback:>14.1}",
            protocol.name()
        );
        if protocol.ensures_rdt() && fdas_forced > 0 && protocol != ProtocolKind::Fdas {
            let reduction = (fdas_forced as i64 - forced as i64) as f64 / fdas_forced as f64;
            print!("   ({:+.1}% vs FDAS)", -reduction * 100.0);
        }
        println!();
    }

    println!(
        "\nIn this environment the causal past of every message contains all previous\n\
         messages, so the causal matrix of the BHMR protocol certifies most siblings\n\
         and suppresses most of FDAS's forced checkpoints (paper §5.3, Figure 9)."
    );
}
