//! Audit an arbitrary checkpoint and communication pattern: rebuild the
//! paper's Figure 1, run every theory query on it, and print the DOT
//! graphs.
//!
//! ```text
//! cargo run --example rdt_audit
//! ```

use rdt::theory::chains::MessageChain;
use rdt::theory::characterization::undoubled_chains;
use rdt::theory::{dot, min_max, paper_figures};
use rdt::{CheckpointId, RGraph, RdtChecker, ZigzagReachability};

fn main() {
    let (pattern, f) = paper_figures::figure_1_with_handles();
    println!(
        "auditing the paper's Figure 1 ({} messages, {} checkpoints)\n",
        pattern.num_messages(),
        pattern.total_checkpoints()
    );

    // Chain classification, exactly as §3.2 narrates.
    let m3_m2 = MessageChain::new([f.m3, f.m2]);
    let m5_m4 = MessageChain::new([f.m5, f.m4]);
    let m5_m6 = MessageChain::new([f.m5, f.m6]);
    println!(
        "[m3 m2] is a chain: {}, causal: {}",
        m3_m2.is_chain(&pattern),
        m3_m2.is_causal(&pattern)
    );
    println!(
        "[m5 m4] is a chain: {}, causal: {}",
        m5_m4.is_chain(&pattern),
        m5_m4.is_causal(&pattern)
    );
    println!(
        "[m5 m6] is a chain: {}, causal: {} (the causal sibling of [m5 m4])",
        m5_m6.is_chain(&pattern),
        m5_m6.is_causal(&pattern)
    );

    // RDT verdict with a concrete counterexample.
    let report = RdtChecker::new(&pattern).check();
    println!("\nRDT holds: {}", report.holds());
    for violation in report.violations() {
        println!("  {violation}");
    }

    // The chain-level view of the same defect.
    println!("\nundoubled chains (endpoints):");
    for u in undoubled_chains(&pattern) {
        println!("  {} -> {} has no causal doubling", u.from, u.to);
    }

    // Consistency and min/max global checkpoints.
    let zz = ZigzagReachability::new(&pattern);
    let ci2 = CheckpointId::new(f.pi, 2);
    println!("\nC(i,2) on a z-cycle (useless): {}", zz.on_z_cycle(ci2));
    let min = min_max::min_consistent_containing(&pattern, &[ci2]).expect("not useless");
    let max = min_max::max_consistent_containing(&pattern, &[ci2]).expect("not useless");
    println!("minimum consistent GC containing C(i,2): {min}");
    println!("maximum consistent GC containing C(i,2): {max}");

    // Graphviz output for the figure and its R-graph.
    println!("\n--- pattern.dot ---\n{}", dot::pattern_to_dot(&pattern));
    println!(
        "--- rgraph.dot ---\n{}",
        dot::rgraph_to_dot(&RGraph::new(&pattern))
    );
}
