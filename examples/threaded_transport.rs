//! Embedding the protocol in a *real* concurrent transport: OS threads
//! and mpsc channels instead of the discrete-event simulator.
//!
//! The protocols are pure state machines, so wiring them into any
//! transport is three calls: `before_send` when a message goes out (attach
//! the piggyback), `on_message_arrival` when one comes in (take the forced
//! checkpoint if told to), `take_basic_checkpoint` whenever the
//! application feels like it. At the end, the collected trace is converted
//! to a pattern and the run is *verified* RDT — timing is real and
//! nondeterministic here, so this exercises schedules no seeded simulation
//! would produce.
//!
//! ```text
//! cargo run --example threaded_transport
//! ```

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread;

use rdt::protocols::{BhmrPiggyback, CicProtocol};
use rdt::{Bhmr, CheckpointId, PatternBuilder, ProcessId, RdtChecker};

/// What travels on the wire: payload tag + the protocol's control data.
struct WireMessage {
    from: ProcessId,
    seq: u64,
    piggyback: BhmrPiggyback,
}

/// A recorded event, appended under a global lock so the shared log is a
/// linear extension of the real execution (each send happens-before its
/// delivery by construction of the channels).
enum LogEvent {
    Send {
        from: ProcessId,
        to: ProcessId,
        seq: u64,
    },
    Deliver {
        to: ProcessId,
        from: ProcessId,
        seq: u64,
    },
    Checkpoint {
        id: CheckpointId,
    },
}

fn main() {
    let n = 4;
    let rounds = 50u64;

    // One mpsc channel per process; everyone can send to everyone.
    let mut senders: Vec<Sender<WireMessage>> = Vec::new();
    let mut receivers: Vec<Option<Receiver<WireMessage>>> = Vec::new();
    for _ in 0..n {
        let (tx, rx) = channel();
        senders.push(tx);
        receivers.push(Some(rx));
    }
    let log = Arc::new(Mutex::new(Vec::<LogEvent>::new()));

    let mut handles = Vec::new();
    for (i, slot) in receivers.iter_mut().enumerate() {
        let me = ProcessId::new(i);
        let rx = slot.take().expect("each receiver moves into its thread");
        let txs = senders.clone();
        let log = Arc::clone(&log);
        handles.push(thread::spawn(move || {
            let mut protocol = Bhmr::new(n, me);
            let mut sent = 0u64;
            let mut delivered = 0u64;
            // Everyone pushes `rounds` messages around the ring and
            // occasionally checkpoints; interleaving is up to the OS.
            while sent < rounds || delivered < rounds {
                if sent < rounds {
                    let dest = ProcessId::new((i + 1) % n);
                    let outcome = protocol.before_send(dest);
                    let seq = sent;
                    log.lock().unwrap().push(LogEvent::Send {
                        from: me,
                        to: dest,
                        seq,
                    });
                    txs[dest.index()]
                        .send(WireMessage {
                            from: me,
                            seq,
                            piggyback: outcome.piggyback,
                        })
                        .expect("receiver alive");
                    sent += 1;
                    if sent.is_multiple_of(10) {
                        let record = protocol.take_basic_checkpoint();
                        log.lock()
                            .unwrap()
                            .push(LogEvent::Checkpoint { id: record.id });
                    }
                }
                while let Ok(message) = rx.try_recv() {
                    let outcome = protocol.on_message_arrival(message.from, &message.piggyback);
                    let mut log = log.lock().unwrap();
                    if let Some(record) = outcome.forced {
                        log.push(LogEvent::Checkpoint { id: record.id });
                    }
                    log.push(LogEvent::Deliver {
                        to: me,
                        from: message.from,
                        seq: message.seq,
                    });
                    delivered += 1;
                }
            }
            // Drain stragglers so every message is delivered.
            while delivered < rounds {
                let message = rx.recv().expect("sender alive");
                let outcome = protocol.on_message_arrival(message.from, &message.piggyback);
                let mut log = log.lock().unwrap();
                if let Some(record) = outcome.forced {
                    log.push(LogEvent::Checkpoint { id: record.id });
                }
                log.push(LogEvent::Deliver {
                    to: me,
                    from: message.from,
                    seq: message.seq,
                });
                delivered += 1;
            }
            *protocol.stats()
        }));
    }

    let stats: Vec<_> = handles
        .into_iter()
        .map(|h| h.join().expect("no panics"))
        .collect();
    let total_forced: u64 = stats.iter().map(|s| s.forced_checkpoints).sum();
    let total_basic: u64 = stats.iter().map(|s| s.basic_checkpoints).sum();
    println!(
        "threaded run: {} messages, {total_basic} basic + {total_forced} forced checkpoints",
        n as u64 * rounds
    );

    // Rebuild the pattern from the shared log and verify RDT offline.
    let log = Arc::try_unwrap(log)
        .ok()
        .expect("threads joined")
        .into_inner()
        .expect("lock unpoisoned");
    let mut builder = PatternBuilder::new(n);
    let mut tokens = std::collections::HashMap::new();
    for event in &log {
        match *event {
            LogEvent::Send { from, to, seq } => {
                tokens.insert((from, seq), (builder.send(from, to), to));
            }
            LogEvent::Deliver { to, from, seq } => {
                let (token, dest) = tokens[&(from, seq)];
                assert_eq!(dest, to, "messages arrive where they were sent");
                builder.deliver(token).expect("single delivery");
            }
            LogEvent::Checkpoint { id } => {
                let built = builder.checkpoint(id.process);
                assert_eq!(built, id, "log order preserves per-process indices");
            }
        }
    }
    let pattern = builder.close().build().expect("well-formed log");
    let report = RdtChecker::new(&pattern).check();
    println!(
        "offline verification over the real concurrent schedule: RDT {}",
        if report.holds() {
            "holds"
        } else {
            "VIOLATED (bug!)"
        }
    );
    assert!(report.holds());
}
