//! Output commit with RDT: when may a process release an effect to the
//! outside world?
//!
//! An output's causal past must never be rolled back, so it can commit
//! only once a *consistent global checkpoint covering that past* is on
//! stable storage. Under RDT the protocol already knows that global
//! checkpoint — it is the `TDV` saved with the current checkpoint
//! (Corollary 4.5) — so the commit test costs nothing at runtime. This
//! example cross-checks the protocol's answer against the offline theory
//! and measures commit lag.
//!
//! ```text
//! cargo run --example output_commit
//! ```

use rdt::recovery::logging::{output_commit_lag, output_commit_requirement};
use rdt::workloads::ClientServerEnvironment;
use rdt::{run_protocol_kind, GlobalCheckpoint, ProtocolKind, SimConfig, StopCondition};

fn main() {
    let n = 6;
    let config = SimConfig::new(n)
        .with_seed(11)
        .with_basic_checkpoints(rdt::sim::BasicCheckpointModel::Exponential { mean: 60 })
        .with_stop(StopCondition::MessagesSent(800));
    let outcome = run_protocol_kind(
        ProtocolKind::Bhmr,
        &config,
        &mut ClientServerEnvironment::new(20),
    );
    let pattern = outcome.trace.to_pattern().to_closed();

    println!(
        "client/server run, n={n}: {} checkpoints taken\n",
        pattern.total_checkpoints()
    );

    // Pretend the system has persisted everything up to the midpoint.
    let stable = GlobalCheckpoint::new(
        (0..n)
            .map(|i| pattern.last_checkpoint_index(rdt::ProcessId::new(i)) / 2)
            .collect(),
    );
    println!("stable storage frontier: {stable}\n");

    // For a handful of checkpoints, ask: if the process wanted to release
    // an output now, what must be stable first, and how far away is that?
    let mut shown = 0;
    for records in &outcome.records {
        for record in records.iter().rev().take(1) {
            let on_the_fly = record.min_consistent_gc.as_ref().expect("BHMR tracks");
            let offline = output_commit_requirement(&pattern, record.id)
                .expect("RDT checkpoints are never useless");
            assert_eq!(
                on_the_fly.as_slice(),
                offline.as_slice(),
                "Corollary 4.5: the protocol's zero-cost answer matches the theory"
            );
            let lag = output_commit_lag(&pattern, record.id, &stable).unwrap();
            println!(
                "output at {}: must stabilize {offline}; lag = {lag} checkpoint(s)",
                record.id
            );
            shown += 1;
        }
    }
    assert!(shown > 0);
    println!(
        "\nEvery requirement above came from the protocol's piggybacked TDV —\n\
         no extra messages, no global coordination (paper §1, Corollary 4.5)."
    );
}
